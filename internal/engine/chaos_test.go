package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hira/internal/fault"
)

// mustInjector builds an injector or fails the test.
func mustInjector(t *testing.T, seed uint64, rules ...fault.Rule) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// chaosCells builds n deterministic cells and a shared run counter.
func chaosCells(n int, runs *atomic.Int64) []Cell[int] {
	cells := make([]Cell[int], n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell[int]{Key: fmt.Sprintf("chaos/c%d", i), Run: func(context.Context) (int, error) {
			runs.Add(1)
			return i*i + 1, nil
		}}
	}
	return cells
}

// assertChaosResults checks a batch's results against the deterministic
// ground truth — the "never wrong figures" half of the chaos contract.
func assertChaosResults(t *testing.T, got []int) {
	t.Helper()
	for i, v := range got {
		if v != i*i+1 {
			t.Fatalf("cell %d = %d, want %d — a fault changed a result instead of degrading", i, v, i*i+1)
		}
	}
}

// TestChaosStoreFaultMatrix drives the engine through every applicable
// (site, kind) combination at the result store and asserts the two-part
// contract: results stay bit-identical to the fault-free ground truth,
// and failures degrade (re-simulate, tally, flip to cache-only) rather
// than abort or corrupt.
func TestChaosStoreFaultMatrix(t *testing.T) {
	const n = 12
	cases := []struct {
		name string
		rule fault.Rule
		// warm pre-populates the store with a clean engine first, so
		// read faults have something to chew on.
		warm bool
	}{
		{"read-eio", fault.Rule{Site: fault.SiteStoreRead, Kind: fault.EIO}, true},
		{"read-corrupt", fault.Rule{Site: fault.SiteStoreRead, Kind: fault.Corrupt}, true},
		{"write-enospc", fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.ENOSPC}, false},
		{"write-eio", fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.EIO}, false},
		{"write-torn", fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.Torn}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var runs atomic.Int64
			if tc.warm {
				clean := New[int](Options{Parallelism: 4, ResultDir: dir})
				got, _, err := clean.Run(context.Background(), chaosCells(n, &runs))
				if err != nil {
					t.Fatal(err)
				}
				assertChaosResults(t, got)
				runs.Store(0)
			}

			in := mustInjector(t, 1, tc.rule)
			e := New[int](Options{Parallelism: 4, ResultDir: dir, FS: in})
			got, stats, err := e.Run(context.Background(), chaosCells(n, &runs))
			if err != nil {
				t.Fatalf("faulted batch aborted: %v", err)
			}
			assertChaosResults(t, got)
			if in.Fired(tc.rule.Site) == 0 {
				t.Fatalf("no faults injected at %s — the test exercised nothing", tc.rule.Site)
			}

			switch tc.rule.Site {
			case fault.SiteStoreRead:
				// Every load failed or was corrupted, so almost every cell
				// re-simulates. Corrupt allows rare store hits: a flip that
				// lands inside the envelope's own field name demotes the
				// file to a legacy sum-less cell with an intact payload — a
				// correct serve (assertChaosResults above is the real
				// contract). EIO permits no such escape.
				if stats.Simulated+stats.StoreHits != n {
					t.Errorf("read faults: stats %+v do not cover all %d cells", stats, n)
				}
				if tc.rule.Kind == fault.EIO && stats.Simulated != n {
					t.Errorf("EIO reads: stats %+v, want %d simulated", stats, n)
				}
				if stats.Simulated == 0 {
					t.Errorf("read faults: nothing re-simulated (stats %+v)", stats)
				}
			case fault.SiteStoreWrite:
				// Persistent write failures: the first storeDegradeAfter
				// saves tally errors, then the store flips to cache-only
				// and stops burning attempts.
				if stats.Simulated != n {
					t.Errorf("write faults: stats %+v, want %d simulated", stats, n)
				}
				if stats.StoreErrors != storeDegradeAfter {
					t.Errorf("write faults: %d store errors, want exactly %d (degrade flip)", stats.StoreErrors, storeDegradeAfter)
				}
				if why, bad := e.StoreDegraded(); !bad || !strings.Contains(why, "consecutive save failures") {
					t.Errorf("StoreDegraded = (%q, %v), want consecutive-failure degradation", why, bad)
				}
				if stats.FirstStoreError == "" {
					t.Error("FirstStoreError empty despite injected write failures")
				}
				// Degraded or not, the memory cache still serves the batch.
				warm, warmStats, err := e.Run(context.Background(), chaosCells(n, &runs))
				if err != nil || warmStats.CacheHits != n {
					t.Fatalf("cache-only rerun: stats %+v, err %v", warmStats, err)
				}
				assertChaosResults(t, warm)
			}
		})
	}
}

// TestChaosProbabilisticSweep hammers a warm/cold mix with every store
// fault armed at 50% probability and asserts results never deviate —
// the randomized complement to the exhaustive matrix above. Three
// seeded rounds over the same directory also exercise healing: what one
// round fails to persist, a later round rewrites.
func TestChaosProbabilisticSweep(t *testing.T) {
	const n = 16
	dir := t.TempDir()
	var runs atomic.Int64
	for seed := uint64(1); seed <= 3; seed++ {
		in := mustInjector(t, seed,
			fault.Rule{Site: fault.SiteStoreRead, Kind: fault.EIO, Prob: 0.25},
			fault.Rule{Site: fault.SiteStoreRead, Kind: fault.Corrupt, Prob: 0.25},
			fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.ENOSPC, Prob: 0.25},
			fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.Torn, Prob: 0.25},
		)
		e := New[int](Options{Parallelism: 4, ResultDir: dir, FS: in})
		got, _, err := e.Run(context.Background(), chaosCells(n, &runs))
		if err != nil {
			t.Fatalf("seed %d: chaos batch aborted: %v", seed, err)
		}
		assertChaosResults(t, got)
	}
	// After the dust settles a clean engine over the same directory must
	// see only intact cells: whatever it indexes parses and verifies.
	clean := New[int](Options{Parallelism: 4, ResultDir: dir})
	got, stats, err := clean.Run(context.Background(), chaosCells(n, &runs))
	if err != nil {
		t.Fatal(err)
	}
	assertChaosResults(t, got)
	if stats.StoreHits+stats.Simulated != n {
		t.Errorf("post-chaos stats %+v do not cover all %d cells", stats, n)
	}
}

// TestChaosStoreChecksumRejectsBitFlip plants a bit flip inside an
// otherwise well-formed cell file — valid JSON, matching key, damaged
// result — and asserts the checksum turns it into a miss. Before
// checksums this was the one corruption the store could serve as a
// silently wrong figure.
func TestChaosStoreChecksumRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	cell := countingCell("k", 1234, &runs)
	e := New[int](Options{Parallelism: 1, ResultDir: dir})
	if _, _, err := e.Run(context.Background(), []Cell[int]{cell}); err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store has %d files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit of the stored result: still valid JSON, still the
	// right key, wrong value.
	flipped := strings.Replace(string(data), "1234", "1235", 1)
	if flipped == string(data) {
		t.Fatal("result literal not found in stored file")
	}
	if err := os.WriteFile(files[0], []byte(flipped), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := New[int](Options{Parallelism: 1, ResultDir: dir})
	got, stats, err := e2.Run(context.Background(), []Cell[int]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1234 || runs.Load() != 2 {
		t.Fatalf("bit-flipped cell served: got %d after %d runs, want 1234 re-simulated", got[0], runs.Load())
	}
	if stats.StoreHits != 0 || stats.Simulated != 1 {
		t.Errorf("stats = %+v, want the damaged cell to read as a miss", stats)
	}
}

// TestChaosCellPanicIsolation asserts a panicking cell fails its batch
// with an attributable error (panic value + stack) instead of killing
// the process, tallies Stats.Panics, and leaves the engine fully usable.
func TestChaosCellPanicIsolation(t *testing.T) {
	e := New[int](Options{Parallelism: 2})
	cells := []Cell[int]{
		{Key: "fine", Run: func(context.Context) (int, error) { return 1, nil }},
		{Key: "bomb", Run: func(context.Context) (int, error) { panic("simulated model invariant violation") }},
	}
	_, _, err := e.Run(context.Background(), cells)
	if err == nil {
		t.Fatal("panicking cell did not fail its batch")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bomb") || !strings.Contains(msg, "simulated model invariant violation") {
		t.Errorf("panic error lacks attribution: %v", err)
	}
	if !strings.Contains(msg, "chaos_test.go") {
		t.Errorf("panic error lacks a stack trace: %v", err)
	}
	if s := e.Stats(); s.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", s.Panics)
	}
	// The engine survives: the same key re-runs cleanly.
	got, _, err := e.Run(context.Background(), []Cell[int]{
		{Key: "bomb", Run: func(context.Context) (int, error) { return 7, nil }},
	})
	if err != nil || got[0] != 7 {
		t.Errorf("engine unusable after panic: got %v, err %v", got, err)
	}
}

// TestChaosSweepStaleTmp is the stale-temp-file regression test: torn
// writes orphan *.tmp files; a later store construction sweeps the old
// ones and leaves fresh ones (a live writer's in-flight temps) alone.
func TestChaosSweepStaleTmp(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Hour)
	stale1 := filepath.Join(dir, "w-stale1.tmp")
	stale2 := filepath.Join(shard, "w-stale2.tmp")
	fresh := filepath.Join(shard, "w-fresh.tmp")
	for _, p := range []string{stale1, stale2, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{stale1, stale2} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	if removed := sweepStaleTmp(dir, tmpSweepAge); removed != 2 {
		t.Errorf("sweep removed %d orphans, want 2", removed)
	}
	for _, p := range []string{stale1, stale2} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale orphan %s survived the sweep", p)
		}
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file was swept: %v", err)
	}
}

// TestChaosTornWriteLeavesRecoverableStore asserts the exact on-disk
// state a torn write leaves — orphaned temp, no destination — reads as
// a miss now and is swept at the next construction once stale.
func TestChaosTornWriteLeavesRecoverableStore(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	in := mustInjector(t, 1, fault.Rule{Site: fault.SiteStoreWrite, Kind: fault.Torn, Count: 1})
	e := New[int](Options{Parallelism: 1, ResultDir: dir, FS: in})
	got, stats, err := e.Run(context.Background(), []Cell[int]{countingCell("k", 5, &runs)})
	if err != nil || got[0] != 5 {
		t.Fatalf("torn write failed the batch: got %v, err %v", got, err)
	}
	if stats.StoreErrors != 1 {
		t.Errorf("stats %+v, want the torn write tallied", stats)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "??", "*.tmp"))
	if len(tmps) != 1 {
		t.Fatalf("torn write left %d temp files, want 1 orphan", len(tmps))
	}
	if cells := storeFiles(t, dir); len(cells) != 0 {
		t.Fatalf("torn write produced %d destination files, want 0", len(cells))
	}

	// Backdate the orphan past the sweep age: the next store opens clean.
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(tmps[0], old, old); err != nil {
		t.Fatal(err)
	}
	e2 := New[int](Options{Parallelism: 1, ResultDir: dir})
	if e2.StoredCells() != 0 {
		t.Error("orphaned temp indexed as a cell")
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "??", "*.tmp")); len(left) != 0 {
		t.Errorf("stale orphan survived store construction: %v", left)
	}
}

// TestChaosSnapStoreFaults covers the checkpoint-store sites: corrupt
// and failing reads are misses that drop the slot, write failures are
// tallied best-effort errors, and a failing eviction unlink still
// leaves a consistent index.
func TestChaosSnapStoreFaults(t *testing.T) {
	t.Run("read-corrupt", func(t *testing.T) {
		in := mustInjector(t, 1, fault.Rule{Site: fault.SiteSnapRead, Kind: fault.Corrupt})
		s := NewSnapStoreFS(t.TempDir(), 1<<20, in)
		if err := s.Save("traj", 100, []byte("checkpoint payload bytes")); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Load("traj", 100); ok {
			t.Fatal("corrupted checkpoint served — the checksum envelope failed")
		}
		if s.Has("traj", 100) {
			t.Error("corrupted slot not dropped; the next resume would re-read the corpse")
		}
		if in.Fired(fault.SiteSnapRead) == 0 {
			t.Fatal("no fault injected")
		}
	})
	t.Run("read-eio", func(t *testing.T) {
		in := mustInjector(t, 1, fault.Rule{Site: fault.SiteSnapRead, Kind: fault.EIO, Count: 1})
		s := NewSnapStoreFS(t.TempDir(), 1<<20, in)
		if err := s.Save("traj", 100, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Load("traj", 100); ok {
			t.Fatal("EIO read served a payload")
		}
		if s.Has("traj", 100) {
			t.Error("unreadable slot not dropped")
		}
	})
	t.Run("write-enospc", func(t *testing.T) {
		in := mustInjector(t, 1, fault.Rule{Site: fault.SiteSnapWrite, Kind: fault.ENOSPC})
		s := NewSnapStoreFS(t.TempDir(), 1<<20, in)
		err := s.Save("traj", 100, []byte("payload"))
		if err == nil {
			t.Fatal("ENOSPC save reported success")
		}
		if st := s.Stats(); st.SaveErrors != 1 || st.FirstSaveError == "" || st.Entries != 0 {
			t.Errorf("stats %+v, want 1 tallied save error and no phantom entry", st)
		}
		if s.Has("traj", 100) {
			t.Error("failed save left an index entry with no file behind it")
		}
	})
	t.Run("evict-eio", func(t *testing.T) {
		in := mustInjector(t, 1, fault.Rule{Site: fault.SiteSnapEvict, Kind: fault.EIO})
		s := NewSnapStoreFS(t.TempDir(), 64, in)
		if err := s.Save("traj", 100, make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
		// This save must evict tick 100; the unlink fails but the index
		// and byte accounting stay consistent.
		if err := s.Save("traj", 200, make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
		if s.Has("traj", 100) || !s.Has("traj", 200) {
			t.Errorf("eviction with failing unlink left wrong slots: ticks %v", s.Ticks("traj"))
		}
		if st := s.Stats(); st.Bytes != 40 || st.Entries != 1 || st.Evictions != 1 {
			t.Errorf("inconsistent accounting after failed unlink: %+v", st)
		}
	})
}

// TestChaosSnapStoreUnwritableRootFallsBack asserts the documented
// in-memory degradation: an unusable on-disk root still yields a store
// that serves warm resumes, reporting why it degraded.
func TestChaosSnapStoreUnwritableRootFallsBack(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(parent, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSnapStore(filepath.Join(parent, "snaps"), 0)
	why, bad := s.Degraded()
	if !bad || why == "" {
		t.Fatalf("Degraded = (%q, %v), want a reason", why, bad)
	}
	if s.maxBytes != DefaultSnapMaxBytesMemory {
		t.Errorf("degraded store cap = %d, want the in-memory default %d", s.maxBytes, DefaultSnapMaxBytesMemory)
	}
	payload := []byte("in-memory checkpoint")
	if err := s.Save("traj", 100, payload); err != nil {
		t.Fatalf("in-memory fallback save failed: %v", err)
	}
	got, ok := s.Load("traj", 100)
	if !ok || string(got) != string(payload) {
		t.Fatalf("in-memory fallback load = (%q, %v)", got, ok)
	}
}

// TestChaosSnapChecksumEnvelopeRoundTrip pins the envelope format: a
// wrapped payload unwraps to the same bytes, damage anywhere inside is
// rejected, and legacy (unwrapped) payloads pass through for the
// consumer's own validation.
func TestChaosSnapChecksumEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("HIRASYS1 pretend snapshot state bytes")
	wrapped := wrapSnapSum(payload)
	got, ok := unwrapSnapSum(wrapped)
	if !ok || string(got) != string(payload) {
		t.Fatalf("round trip = (%q, %v)", got, ok)
	}
	for i := range wrapped {
		damaged := append([]byte(nil), wrapped...)
		damaged[i] ^= 0xA5
		out, ok := unwrapSnapSum(damaged)
		if !ok {
			continue // rejected: good
		}
		// Accepted: only legal if the magic itself was damaged, which
		// demotes the blob to a legacy passthrough.
		if i >= len(snapSumMagic) {
			t.Fatalf("byte %d flip accepted as valid envelope (payload %q)", i, out)
		}
	}
	legacy, ok := unwrapSnapSum(payload)
	if !ok || string(legacy) != string(payload) {
		t.Fatalf("legacy passthrough = (%q, %v)", legacy, ok)
	}
}
