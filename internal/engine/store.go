package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// store is the content-addressed on-disk half of an engine's result
// cache. Each cell result lives in its own JSON file named by the
// SHA-256 of the cell key, sharded into 256 two-hex-digit directories so
// a paper-scale store (hundreds of thousands of cells) never produces a
// single pathological directory. Writes go through a temp file in the
// destination shard followed by os.Rename, so a crash at any instant
// leaves either the old file, the new file, or an ignorable *.tmp —
// never a truncated cell. An unreadable, corrupt, or key-mismatched file
// is a miss: the cell re-simulates and overwrites it.
//
// At construction the store walks its shard directories once and builds
// an in-memory index of present hashes, so a cold lookup against a large
// store is a map probe, not a stat. The index is updated on every save;
// it only goes stale if a *different* process writes the same directory,
// in which case those cells are re-simulated rather than served — safe,
// merely redundant.
type store[R any] struct {
	root string

	mu    sync.Mutex
	index map[string]struct{} // present cell hashes
}

// storedCell is the on-disk JSON schema of one cell result. The full key
// is stored alongside the result so files are self-describing and a
// (vanishingly unlikely) hash collision is detected rather than served.
type storedCell[R any] struct {
	Key    string `json:"key"`
	Result R      `json:"result"`
}

// newStore opens (creating if needed) the store rooted at dir and loads
// its index. Cells written by the pre-sharding flat layout
// (root/<hash>.json) are migrated into their shards first, so upgraded
// stores stay warm. An unusable root degrades to an empty index: loads
// miss and saves report errors, which the engine tallies as
// StoreErrors.
func newStore[R any](dir string) *store[R] {
	s := &store[R]{root: dir, index: make(map[string]struct{})}
	os.MkdirAll(dir, 0o755)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return s
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			if hash, ok := flatCellName(name); ok {
				// One-time migration of a flat-layout cell; on any
				// failure leave it in place (it is simply re-simulated).
				if os.MkdirAll(filepath.Join(dir, hash[:2]), 0o755) == nil &&
					os.Rename(filepath.Join(dir, name), s.path(hash)) == nil {
					s.index[hash] = struct{}{}
				}
			}
			continue
		}
		if !isShardName(name) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		for _, f := range files {
			if hash, ok := flatCellName(f.Name()); ok {
				s.index[hash] = struct{}{}
			}
		}
	}
	return s
}

// flatCellName parses a <64-hex>.json cell file name.
func flatCellName(name string) (string, bool) {
	if len(name) != 64+len(".json") || filepath.Ext(name) != ".json" {
		return "", false
	}
	hash := name[:64]
	if _, err := hex.DecodeString(hash); err != nil {
		return "", false
	}
	return hash, true
}

// isShardName reports whether name is a two-hex-digit shard directory.
func isShardName(name string) bool {
	if len(name) != 2 {
		return false
	}
	_, err := hex.DecodeString(name)
	return err == nil
}

// hashKey returns the hex SHA-256 a key files under.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path returns where the cell for hash lives: root/ab/abcd....json.
func (s *store[R]) path(hash string) string {
	return filepath.Join(s.root, hash[:2], hash+".json")
}

// load fetches the stored result for key, if present and intact.
func (s *store[R]) load(key string) (R, bool) {
	var zero R
	hash := hashKey(key)
	s.mu.Lock()
	_, present := s.index[hash]
	s.mu.Unlock()
	if !present {
		return zero, false
	}
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		return zero, false
	}
	var sc storedCell[R]
	if err := json.Unmarshal(data, &sc); err != nil || sc.Key != key {
		return zero, false
	}
	return sc.Result, true
}

// save persists a result, writing via a temp file in the destination
// shard so the final rename is atomic on every POSIX filesystem.
func (s *store[R]) save(key string, r R) error {
	data, err := json.Marshal(storedCell[R]{Key: key, Result: r})
	if err != nil {
		return fmt.Errorf("engine: marshal cell %q: %w", key, err)
	}
	hash := hashKey(key)
	shard := filepath.Join(s.root, hash[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("engine: result store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, "cell-*.tmp")
	if err != nil {
		return fmt.Errorf("engine: result store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: result store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: result store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: result store: %w", err)
	}
	s.mu.Lock()
	s.index[hash] = struct{}{}
	s.mu.Unlock()
	return nil
}

// Len reports how many cells the index currently knows about.
func (s *store[R]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
