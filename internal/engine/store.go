package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hira/internal/fault"
)

// store is the content-addressed on-disk half of an engine's result
// cache. Each cell result lives in its own JSON file named by the
// SHA-256 of the cell key, sharded into 256 two-hex-digit directories so
// a paper-scale store (hundreds of thousands of cells) never produces a
// single pathological directory. Writes go through a temp file in the
// destination shard followed by a rename, so a crash at any instant
// leaves either the old file, the new file, or an ignorable *.tmp —
// never a truncated cell. An unreadable, corrupt, or key-mismatched file
// is a miss: the cell re-simulates and overwrites it.
//
// At construction the store walks its shard directories once and builds
// an in-memory index of present hashes, so a cold lookup against a large
// store is a map probe, not a stat. The index is updated on every save;
// it only goes stale if a *different* process writes the same directory,
// in which case those cells are re-simulated rather than served — safe,
// merely redundant.
//
// Degradation contract: the store never fails a cell over storage. An
// unwritable root (detected by a probe write at construction) or a run
// of storeDegradeAfter consecutive save failures (a disk that filled up
// mid-sweep) flips the store into cache-only mode — saves become silent
// no-ops, loads keep working if the root is still readable, and the
// engine's in-memory cache carries new results for the process's
// lifetime. The flip is reported once through Degraded() (surfaced as
// the hira_store_degraded gauge and /readyz), not once per cell.
//
// All per-operation file I/O goes through a fault.FS, so chaos runs can
// inject ENOSPC, EIO, torn writes, and corrupt reads at the store.read /
// store.write sites deterministically.
type store[R any] struct {
	root string
	fs   fault.FS

	mu        sync.Mutex
	index     map[string]struct{} // present cell hashes
	degraded  string              // non-empty: cache-only mode, and why
	saveFails int                 // consecutive save failures
}

// storeDegradeAfter is how many consecutive save failures flip the
// store into cache-only mode: enough to ride out one transient hiccup,
// few enough that a full disk stops burning a write attempt (and a
// StoreErrors tally) on every remaining cell of a sweep.
const storeDegradeAfter = 4

// tmpSweepAge bounds the stale-temp-file sweep at construction: *.tmp
// files older than this are orphans of a crashed writer and are
// removed; younger ones may belong to a live process sharing the
// directory and are left alone.
const tmpSweepAge = time.Hour

// storedCell is the on-disk JSON schema of one cell result. The full key
// is stored alongside the result so files are self-describing and a
// (vanishingly unlikely) hash collision is detected rather than served.
// Sum is the hex SHA-256 of the raw result bytes: a corrupted file that
// still parses as JSON (bit rot flipping a digit inside a figure value)
// must read as a miss, never as a subtly wrong result. Files written
// before the checksum existed have no sum and are accepted as-is.
type storedCell[R any] struct {
	Key    string `json:"key"`
	Sum    string `json:"sum,omitempty"`
	Result R      `json:"result"`
}

// storedWire is storedCell with the result left as raw bytes, so load
// can verify the checksum over exactly the bytes on disk and save can
// checksum exactly the bytes it writes.
type storedWire struct {
	Key    string          `json:"key"`
	Sum    string          `json:"sum,omitempty"`
	Result json.RawMessage `json:"result"`
}

// sumBytes returns the hex SHA-256 of b.
func sumBytes(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// newStore opens (creating if needed) the store rooted at dir and loads
// its index. Cells written by the pre-sharding flat layout
// (root/<hash>.json) are migrated into their shards first, so upgraded
// stores stay warm. Stale *.tmp orphans from crashed writers are swept.
// An unusable root degrades to an empty index; an unwritable one
// additionally flips the store into cache-only mode (see the type
// comment).
func newStore[R any](dir string, fsys fault.FS) *store[R] {
	if fsys == nil {
		fsys = fault.OS
	}
	s := &store[R]{root: dir, fs: fsys, index: make(map[string]struct{})}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.degraded = fmt.Sprintf("store root unusable: %v", err)
	} else if err := probeWritable(dir); err != nil {
		s.degraded = fmt.Sprintf("store root unwritable: %v", err)
	}
	sweepStaleTmp(dir, tmpSweepAge)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return s
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			if hash, ok := flatCellName(name); ok {
				// One-time migration of a flat-layout cell; on any
				// failure leave it in place (it is simply re-simulated).
				if os.MkdirAll(filepath.Join(dir, hash[:2]), 0o755) == nil &&
					os.Rename(filepath.Join(dir, name), s.path(hash)) == nil {
					s.index[hash] = struct{}{}
				}
			}
			continue
		}
		if !isShardName(name) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		for _, f := range files {
			if hash, ok := flatCellName(f.Name()); ok {
				s.index[hash] = struct{}{}
			}
		}
	}
	return s
}

// probeWritable checks that dir accepts writes by creating and removing
// a probe file — the cheap startup test behind the documented
// "unwritable root degrades to cache-only mode" contract.
func probeWritable(dir string) error {
	f, err := os.CreateTemp(dir, ".probe-*.tmp")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// sweepStaleTmp removes *.tmp files older than maxAge from dir and its
// shard subdirectories. Temp files are orphaned by a crash between
// create and rename (or by an injected torn write); without the sweep
// they accumulate forever. The age bound protects a live writer sharing
// the directory: its in-flight temp files are seconds old, not hours.
// Returns how many orphans were removed.
func sweepStaleTmp(dir string, maxAge time.Duration) int {
	cutoff := time.Now().Add(-maxAge)
	removed := 0
	sweepDir := func(d string) {
		entries, err := os.ReadDir(d)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
				continue
			}
			info, err := e.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
			if os.Remove(filepath.Join(d, e.Name())) == nil {
				removed++
			}
		}
	}
	sweepDir(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return removed
	}
	for _, e := range entries {
		if e.IsDir() && isShardName(e.Name()) {
			sweepDir(filepath.Join(dir, e.Name()))
		}
	}
	return removed
}

// flatCellName parses a <64-hex>.json cell file name.
func flatCellName(name string) (string, bool) {
	if len(name) != 64+len(".json") || filepath.Ext(name) != ".json" {
		return "", false
	}
	hash := name[:64]
	if _, err := hex.DecodeString(hash); err != nil {
		return "", false
	}
	return hash, true
}

// isShardName reports whether name is a two-hex-digit shard directory.
func isShardName(name string) bool {
	if len(name) != 2 {
		return false
	}
	_, err := hex.DecodeString(name)
	return err == nil
}

// hashKey returns the hex SHA-256 a key files under.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path returns where the cell for hash lives: root/ab/abcd....json.
func (s *store[R]) path(hash string) string {
	return filepath.Join(s.root, hash[:2], hash+".json")
}

// load fetches the stored result for key, if present and intact. Loads
// keep working in cache-only (degraded) mode: a root can be unwritable
// yet still readable, and the cells already on disk are still good.
func (s *store[R]) load(key string) (R, bool) {
	var zero R
	hash := hashKey(key)
	s.mu.Lock()
	_, present := s.index[hash]
	s.mu.Unlock()
	if !present {
		return zero, false
	}
	data, err := s.fs.ReadFile(fault.SiteStoreRead, s.path(hash))
	if err != nil {
		return zero, false
	}
	var sc storedWire
	if err := json.Unmarshal(data, &sc); err != nil || sc.Key != key {
		return zero, false
	}
	if sc.Sum != "" && sumBytes(sc.Result) != sc.Sum {
		return zero, false
	}
	var r R
	if err := json.Unmarshal(sc.Result, &r); err != nil {
		return zero, false
	}
	return r, true
}

// degradedReason reports whether the store is in cache-only mode.
func (s *store[R]) degradedReason() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degraded != ""
}

// save persists a result via an atomic temp+rename write. In cache-only
// mode saves are silent no-ops (saved=false, err=nil): the degradation
// was reported once when the store flipped; failing every remaining
// cell's save would only repeat it. A failed save counts toward the
// consecutive-failure flip; a successful one resets the run.
func (s *store[R]) save(key string, r R) (saved bool, err error) {
	s.mu.Lock()
	deg := s.degraded != ""
	s.mu.Unlock()
	if deg {
		return false, nil
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return false, fmt.Errorf("engine: marshal cell %q: %w", key, err)
	}
	data, err := json.Marshal(storedWire{Key: key, Sum: sumBytes(raw), Result: raw})
	if err != nil {
		return false, fmt.Errorf("engine: marshal cell %q: %w", key, err)
	}
	hash := hashKey(key)
	if err := s.fs.WriteFileAtomic(fault.SiteStoreWrite, s.path(hash), data); err != nil {
		s.mu.Lock()
		s.saveFails++
		if s.saveFails >= storeDegradeAfter && s.degraded == "" {
			s.degraded = fmt.Sprintf("%d consecutive save failures, last: %v", s.saveFails, err)
		}
		s.mu.Unlock()
		return false, fmt.Errorf("engine: result store: %w", err)
	}
	s.mu.Lock()
	s.saveFails = 0
	s.index[hash] = struct{}{}
	s.mu.Unlock()
	return true, nil
}

// Len reports how many cells the index currently knows about.
func (s *store[R]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
