package engine

import (
	"hira/internal/telemetry"
)

// Metrics is the engine's hot-path instrumentation: the histograms and
// counters that cannot be derived from Stats() at scrape time because
// they observe durations or events Stats does not tally. All fields are
// nil-safe telemetry instruments, so a nil *Metrics (or a Metrics with
// unset fields) costs the engine one branch per cell phase.
//
// Count-style tallies (cells simulated / cache hits / resumed ticks /
// ...) are deliberately NOT duplicated here — expose them with
// telemetry CounterFuncs over Engine.Stats(), which samples the
// authoritative tally at scrape time and can never drift from it.
type Metrics struct {
	// CellSeconds observes the wall time of each simulated cell (cache
	// and store hits are not observed — they answer in microseconds and
	// would drown the simulate distribution).
	CellSeconds *telemetry.Histogram
	// SemWaitSeconds observes how long each computed cell waited for an
	// engine-wide compute token: the queue-ahead-of-simulation signal
	// that says whether Parallelism, not the machine, bounds throughput.
	SemWaitSeconds *telemetry.Histogram
	// StoreWriteSeconds observes result-store persists.
	StoreWriteSeconds *telemetry.Histogram
	// SingleflightWaits counts cells served by waiting on another
	// batch's in-flight computation (they tally as CacheHits in Stats;
	// this separates "already cached" from "deduped against a
	// concurrent job").
	SingleflightWaits *telemetry.Counter
}

// NewMetrics registers the engine's instruments on r (nil r returns a
// Metrics whose instruments are all no-ops).
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		CellSeconds: r.Histogram("hira_engine_cell_seconds",
			"Wall time per simulated cell (cache/store hits excluded).", nil),
		SemWaitSeconds: r.Histogram("hira_engine_semaphore_wait_seconds",
			"Time each computed cell waited for an engine compute token.", nil),
		StoreWriteSeconds: r.Histogram("hira_engine_store_write_seconds",
			"Time spent persisting cell results to the store.", nil),
		SingleflightWaits: r.Counter("hira_engine_singleflight_waits_total",
			"Cells served by waiting on another batch's in-flight computation."),
	}
}

// RegisterStatsFuncs exposes an engine's lifetime Stats tallies as
// scrape-time counters on r, under the hira_engine_cells family names.
// stats is sampled per scrape, so the counters are exactly as
// authoritative as Engine.Stats() and add zero hot-path cost.
func RegisterStatsFuncs(r *telemetry.Registry, stats func() Stats) {
	if r == nil {
		return
	}
	counter := func(name, help string, pick func(Stats) uint64) {
		r.CounterFunc(name, help, func() float64 { return float64(pick(stats())) })
	}
	counter("hira_engine_cells_submitted_total", "Cells passed to engine Run batches.",
		func(s Stats) uint64 { return s.Submitted })
	counter("hira_engine_cells_simulated_total", "Cells actually computed.",
		func(s Stats) uint64 { return s.Simulated })
	counter("hira_engine_cells_cache_hits_total", "Cells served from the in-memory cache or an in-flight computation.",
		func(s Stats) uint64 { return s.CacheHits })
	counter("hira_engine_cells_store_hits_total", "Cells loaded from the result store.",
		func(s Stats) uint64 { return s.StoreHits })
	counter("hira_engine_cells_deduped_total", "Duplicate keys collapsed within batches.",
		func(s Stats) uint64 { return s.Deduped })
	counter("hira_engine_cells_resumed_total", "Simulated cells that restored a checkpoint instead of starting cold.",
		func(s Stats) uint64 { return s.Resumed })
	counter("hira_engine_resumed_ticks_total", "Simulation ticks spared by checkpoint resumes.",
		func(s Stats) uint64 { return s.ResumedTicks })
	counter("hira_engine_store_errors_total", "Cell results that could not be persisted.",
		func(s Stats) uint64 { return s.StoreErrors })
	counter("hira_engine_planned_passes_total", "Coalesced sweep-planner passes executed.",
		func(s Stats) uint64 { return s.PlannedPasses })
	counter("hira_engine_planned_cells_total", "Cells resolved by coalesced planner passes.",
		func(s Stats) uint64 { return s.PlannedCells })
	counter("hira_engine_simulated_ticks_total", "Machine ticks actually simulated by cell runners.",
		func(s Stats) uint64 { return s.SimulatedTicks })
}

// RegisterSnapStoreFuncs exposes a SnapStore's tallies as scrape-time
// metrics on r: the save/load/evict counters plus the cache-economics
// pair — ghost hits and eviction-attributed re-simulated ticks — that
// say what the byte cap actually costs (see SnapStats).
func RegisterSnapStoreFuncs(r *telemetry.Registry, stats func() SnapStats) {
	if r == nil {
		return
	}
	counter := func(name, help string, pick func(SnapStats) float64) {
		r.CounterFunc(name, help, func() float64 { return pick(stats()) })
	}
	counter("hira_snapstore_hits_total", "Resume attempts that restored a usable checkpoint.",
		func(s SnapStats) float64 { return float64(s.Hits) })
	counter("hira_snapstore_misses_total", "Resume attempts that found nothing usable.",
		func(s SnapStats) float64 { return float64(s.Misses) })
	counter("hira_snapstore_loads_total", "Checkpoint payload reads served.",
		func(s SnapStats) float64 { return float64(s.Loads) })
	counter("hira_snapstore_saves_total", "Checkpoints written.",
		func(s SnapStats) float64 { return float64(s.Saves) })
	counter("hira_snapstore_save_errors_total", "Checkpoint writes that failed.",
		func(s SnapStats) float64 { return float64(s.SaveErrors) })
	counter("hira_snapstore_evictions_total", "Checkpoints dropped by the byte cap.",
		func(s SnapStats) float64 { return float64(s.Evictions) })
	counter("hira_snapstore_ghost_hits_total", "Resume attempts that would have resumed further but for a prior eviction.",
		func(s SnapStats) float64 { return float64(s.GhostHits) })
	counter("hira_snapstore_eviction_resim_ticks_total", "Simulation ticks re-simulated because the covering checkpoint was evicted.",
		func(s SnapStats) float64 { return float64(s.EvictionResimTicks) })
	counter("hira_snapstore_delta_saves_total", "Differential checkpoints written (also counted in saves).",
		func(s SnapStats) float64 { return float64(s.DeltaSaves) })
	counter("hira_snapstore_delta_bytes_total", "Payload bytes written as differential checkpoints.",
		func(s SnapStats) float64 { return float64(s.DeltaBytes) })
	r.GaugeFunc("hira_snapstore_bytes", "Current checkpoint payload bytes.",
		func() float64 { return float64(stats().Bytes) })
	r.GaugeFunc("hira_snapstore_entries", "Current checkpoint count.",
		func() float64 { return float64(stats().Entries) })
}
