package engine_test

import (
	"context"
	"reflect"
	"testing"

	"hira/internal/sim"
)

// fig9Opts is a laptop-scale Fig. 9-shaped sweep configuration.
func fig9Opts(parallelism int, dir string, stats *sim.EngineStats) sim.Options {
	return sim.Options{
		Workloads: 2, Cores: 8, Warmup: 4000, Measure: 15000, Seed: 1,
		Parallelism: parallelism, ResultDir: dir, Stats: stats,
	}
}

// TestEngineDeterminism asserts the engine's core contract on a real
// Fig. 9-shaped sweep: scheduling order must not leak into results
// (Parallelism 1 and 8 produce identical rows and PolicyScores), and a
// cache-warm re-run against a result store performs zero simulations.
func TestEngineDeterminism(t *testing.T) {
	caps := []int{8, 32}

	t.Run("parallel-matches-serial", func(t *testing.T) {
		serial, err := sim.Fig9(context.Background(), fig9Opts(1, "", nil), caps)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := sim.Fig9(context.Background(), fig9Opts(8, "", nil), caps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("Fig9 rows differ between Parallelism 1 and 8:\nserial:   %+v\nparallel: %+v",
				serial, parallel)
		}

		base := sim.DefaultConfig()
		base.ChipCapacityGbit = 32
		policies := []sim.RefreshPolicy{sim.BaselinePolicy(), sim.HiRAPeriodicPolicy(2)}
		s1, err := sim.RunPolicies(context.Background(), base, policies, fig9Opts(1, "", nil))
		if err != nil {
			t.Fatal(err)
		}
		s8, err := sim.RunPolicies(context.Background(), base, policies, fig9Opts(8, "", nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s8) {
			t.Fatalf("PolicyScores differ between Parallelism 1 and 8:\n%+v\nvs\n%+v", s1, s8)
		}
	})

	t.Run("warm-rerun-simulates-nothing", func(t *testing.T) {
		dir := t.TempDir()
		var cold sim.EngineStats
		first, err := sim.Fig9(context.Background(), fig9Opts(4, dir, &cold), caps)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Simulated == 0 {
			t.Fatal("cold run simulated nothing; stats not wired")
		}
		var warm sim.EngineStats
		second, err := sim.Fig9(context.Background(), fig9Opts(4, dir, &warm), caps)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Simulated != 0 {
			t.Errorf("cache-warm re-run simulated %d cells, want 0 (stats %+v)", warm.Simulated, warm)
		}
		if warm.StoreHits == 0 {
			t.Error("cache-warm re-run hit the store zero times")
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("store round-trip changed Fig9 rows:\n%+v\nvs\n%+v", first, second)
		}
	})
}

// TestEngineSharesCellsAcrossSweepPoints asserts the dedup the engine
// exists for: alone-IPC reference cells are simulated once for the whole
// sweep rather than once per capacity, so a two-capacity sweep resolves
// some cells from cache even with no result store.
func TestEngineSharesCellsAcrossSweepPoints(t *testing.T) {
	var stats sim.EngineStats
	if _, err := sim.Fig9(context.Background(), fig9Opts(4, "", &stats), []int{8, 32}); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits == 0 {
		t.Errorf("two-capacity Fig9 sweep had zero cache hits; alone references re-simulated per capacity (stats %+v)", stats)
	}
}
