// Package charz implements the paper's real-chip characterization
// methodology (§4) against virtual chips: Algorithm 1 (HiRA coverage),
// Algorithm 2 (verifying HiRA's second row activation via RowHammer
// thresholds), the per-bank variation study (§4.4), and the tested-module
// table (Tables 1 and 4).
package charz

import (
	"fmt"

	"hira/internal/chip"
)

// Module describes one DRAM module under test, mirroring the columns of
// Table 4.
type Module struct {
	Label    string // e.g. "A0"
	Vendor   string // module vendor
	ChipMfr  string // chip manufacturer
	ModuleID string
	ChipID   string
	FreqMTs  int    // MT/s
	DateCode string // week-year
	CapGbit  int
	DieRev   string
	OrgX     int // x8 etc.
	Design   chip.Design
	Seed     uint64
}

func (m Module) String() string {
	return fmt.Sprintf("%s (%s %dGb %s-die)", m.Label, m.ChipMfr, m.CapGbit, m.DieRev)
}

// NewChip instantiates the module's virtual chip with the given geometry.
func (m Module) NewChip(g chip.Geometry) *chip.Chip {
	return chip.New(m.Design, g, m.Seed, 8)
}

// TestedModules returns the seven modules of Table 1 / Table 4 on which
// the paper demonstrates HiRA, with per-module coverage targets calibrated
// to the table's averages.
func TestedModules() []Module {
	mk := func(label, vendor, moduleID, chipID, date string, cap int, die string, cov float64, seed uint64) Module {
		return Module{
			Label:    label,
			Vendor:   vendor,
			ChipMfr:  "SK Hynix",
			ModuleID: moduleID,
			ChipID:   chipID,
			FreqMTs:  2400,
			DateCode: date,
			CapGbit:  cap,
			DieRev:   die,
			OrgX:     8,
			Design:   chip.SKHynixLike("SK Hynix "+die+"-die", cov),
			Seed:     seed,
		}
	}
	return []Module{
		mk("A0", "G.SKILL", "F4-2400C17S-8GNT", "DWCW (partial marking)", "42-20", 4, "B", 0.250, 0xA0),
		mk("A1", "G.SKILL", "F4-2400C17S-8GNT", "DWCW (partial marking)", "42-20", 4, "B", 0.266, 0xA1),
		mk("B0", "Kingston", "KSM32RD8/16HDR", "H5AN8G8NDJR-XNC", "48-20", 8, "D", 0.326, 0xB0),
		mk("B1", "Kingston", "KSM32RD8/16HDR", "H5AN8G8NDJR-XNC", "48-20", 8, "D", 0.316, 0xB1),
		mk("C0", "SK Hynix", "HMAA4GU6AJR8N-XN", "H5ANAG8NAJR-XN", "51-20", 4, "F", 0.353, 0xC0),
		mk("C1", "SK Hynix", "HMAA4GU6AJR8N-XN", "H5ANAG8NAJR-XN", "51-20", 4, "F", 0.384, 0xC1),
		mk("C2", "SK Hynix", "HMAA4GU6AJR8N-XN", "H5ANAG8NAJR-XN", "51-20", 4, "F", 0.361, 0xC2),
	}
}

// NonWorkingModules returns stand-ins for the Micron- and
// Samsung-manufactured chips on which the paper observed no successful
// HiRA operation (§12).
func NonWorkingModules() []Module {
	return []Module{
		{Label: "M0", Vendor: "Micron", ChipMfr: "Micron", FreqMTs: 2400, CapGbit: 8,
			DieRev: "?", OrgX: 8, Design: chip.NonHiRALike("Micron-like"), Seed: 0xE0},
		{Label: "S0", Vendor: "Samsung", ChipMfr: "Samsung", FreqMTs: 2400, CapGbit: 8,
			DieRev: "?", OrgX: 8, Design: chip.NonHiRALike("Samsung-like"), Seed: 0xE1},
	}
}

// CharzGeometry is the bank structure the characterization runs against.
// It keeps the paper's 128 subarrays per bank (what coverage statistics
// depend on) but shortens subarrays to 64 rows so that the "first 2K,
// middle 2K, last 2K rows of bank 0" regions (footnote 4) span 96 of the
// 128 subarrays and the experiments complete in seconds rather than days.
func CharzGeometry() chip.Geometry {
	return chip.Geometry{Banks: 16, SubarraysPerBank: 128, RowsPerSubarray: 64}
}

// TestedRows returns the paper's tested-row sample (footnote 4): the
// first, middle, and last regionSize rows of a bank, thinned by stride
// (stride 1 keeps every row).
func TestedRows(g chip.Geometry, regionSize, stride int) []int {
	if stride < 1 {
		stride = 1
	}
	rows := g.RowsPerBank()
	if regionSize > rows/3 {
		regionSize = rows / 3
	}
	starts := []int{0, rows/2 - regionSize/2, rows - regionSize}
	var out []int
	for _, s := range starts {
		for r := s; r < s+regionSize; r += stride {
			out = append(out, r)
		}
	}
	return out
}

// InteriorRows filters rows to those with both neighbours inside the same
// subarray, as double-sided hammering requires.
func InteriorRows(g chip.Geometry, rows []int) []int {
	var out []int
	for _, r := range rows {
		pos := r % g.RowsPerSubarray
		if pos >= 1 && pos <= g.RowsPerSubarray-2 {
			out = append(out, r)
		}
	}
	return out
}

// SampleRows picks up to n rows from rows, evenly spaced.
func SampleRows(rows []int, n int) []int {
	if n <= 0 || n >= len(rows) {
		return rows
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rows[i*len(rows)/n])
	}
	return out
}
