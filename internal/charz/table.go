package charz

import (
	"hira/internal/dram"
	"hira/internal/metrics"
	"hira/internal/softmc"
)

// Options sizes a characterization run. Zero values take the defaults
// noted on each field; the paper-scale values (2048-row regions, every row
// as RowA) are reachable by setting the fields explicitly.
type Options struct {
	// RegionSize is the size of each of the three tested row regions
	// (first/middle/last; paper: 2048). Default 2048.
	RegionSize int
	// RowAStride thins the RowA sample: coverage is measured for every
	// RowAStride-th tested row. Default 96.
	RowAStride int
	// RowBStride thins the RowB candidate set. Default 8.
	RowBStride int
	// NRHVictims is how many victim rows Algorithm 2 measures. Default 16.
	NRHVictims int
	// Bank selects the tested bank (paper: bank 0).
	Bank int
	// T1, T2 are the HiRA timings (default 3 ns each).
	T1, T2 dram.Time
}

func (o Options) withDefaults() Options {
	if o.RegionSize == 0 {
		o.RegionSize = 2048
	}
	if o.RowAStride == 0 {
		o.RowAStride = 96
	}
	if o.RowBStride == 0 {
		o.RowBStride = 8
	}
	if o.NRHVictims == 0 {
		o.NRHVictims = 16
	}
	if o.T1 == 0 {
		o.T1 = 3 * dram.Nanosecond
	}
	if o.T2 == 0 {
		o.T2 = 3 * dram.Nanosecond
	}
	return o
}

// ModuleResult is one row of Table 4: per-module HiRA coverage and
// normalized RowHammer threshold statistics.
type ModuleResult struct {
	Module   Module
	Coverage metrics.Summary // across tested RowAs
	NormNRH  metrics.Summary // across tested victims
	// HiRAWorks reports whether Algorithm 2 verified the second row
	// activation (the paper's criterion for a working module: thresholds
	// rise well above 1x; non-working chips stay at ~1x or yield no
	// pairable rows at all).
	HiRAWorks bool
}

// CharacterizeModule reproduces one module's Table 4 row.
func CharacterizeModule(m Module, opts Options) ModuleResult {
	opts = opts.withDefaults()
	g := CharzGeometry()
	h := softmc.NewHost(m.NewChip(g))

	tested := TestedRows(g, opts.RegionSize, 1)
	rowAs := SampleRows(tested, len(tested)/opts.RowAStride)
	rowBs := SampleRows(tested, len(tested)/opts.RowBStride)

	cov := MeasureCoverage(h, opts.Bank, rowAs, rowBs, opts.T1, opts.T2)

	victims := SampleRows(InteriorRows(g, tested), opts.NRHVictims)
	nrh := MeasureNRHRows(h, opts.Bank, victims, opts.T1, opts.T2)

	var norm []float64
	for _, r := range nrh {
		norm = append(norm, r.Normalized)
	}
	res := ModuleResult{
		Module:   m,
		Coverage: cov.Summary,
		NormNRH:  metrics.Summarize(norm),
	}
	res.HiRAWorks = len(nrh) > 0 && res.NormNRH.Mean > 1.5
	return res
}

// BankResult is one box of Fig. 6: the normalized RowHammer threshold
// distribution within one bank.
type BankResult struct {
	Bank       int
	Normalized metrics.Summary
}

// BankVariation reproduces Fig. 6 for one module: Algorithm 2 run on every
// bank. victimsPerBank <= 0 defaults to 8.
func BankVariation(m Module, victimsPerBank int, t1, t2 dram.Time) []BankResult {
	if victimsPerBank <= 0 {
		victimsPerBank = 8
	}
	if t1 == 0 {
		t1 = 3 * dram.Nanosecond
	}
	if t2 == 0 {
		t2 = 3 * dram.Nanosecond
	}
	g := CharzGeometry()
	h := softmc.NewHost(m.NewChip(g))
	tested := InteriorRows(g, TestedRows(g, 2048, 1))
	victims := SampleRows(tested, victimsPerBank)

	var out []BankResult
	for bank := 0; bank < g.Banks; bank++ {
		results := MeasureNRHRows(h, bank, victims, t1, t2)
		var norm []float64
		for _, r := range results {
			norm = append(norm, r.Normalized)
		}
		out = append(out, BankResult{Bank: bank, Normalized: metrics.Summarize(norm)})
	}
	return out
}

// CoverageIdenticalAcrossBanks verifies the paper's §4.4.1 observation:
// the set of row pairs HiRA can concurrently activate is identical in
// every bank. It probes pairCount pairs in every bank and reports whether
// all banks agree with bank 0.
func CoverageIdenticalAcrossBanks(m Module, pairCount int, t1, t2 dram.Time) bool {
	if pairCount <= 0 {
		pairCount = 32
	}
	g := CharzGeometry()
	h := softmc.NewHost(m.NewChip(g))
	tested := TestedRows(g, 2048, 1)
	rows := SampleRows(tested, pairCount*2)

	type pair struct{ a, b int }
	pairs := make([]pair, 0, pairCount)
	for i := 0; i+1 < len(rows); i += 2 {
		pairs = append(pairs, pair{rows[i], rows[i+1]})
	}
	var ref []bool
	for bank := 0; bank < g.Banks; bank++ {
		got := make([]bool, len(pairs))
		for i, p := range pairs {
			got[i] = PairWorks(h, bank, p.a, p.b, t1, t2)
		}
		if bank == 0 {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
	}
	return true
}
