package charz

import (
	"math"
	"testing"

	"hira/internal/chip"
	"hira/internal/dram"
	"hira/internal/softmc"
)

var (
	t3ns = 3 * dram.Nanosecond
)

func fastHost(cov float64, seed uint64) *softmc.Host {
	m := Module{Label: "T", Design: chip.SKHynixLike("test", cov), Seed: seed}
	return softmc.NewHost(m.NewChip(CharzGeometry()))
}

func TestTestedModulesMatchTable1(t *testing.T) {
	ms := TestedModules()
	if len(ms) != 7 {
		t.Fatalf("got %d modules, want 7", len(ms))
	}
	labels := []string{"A0", "A1", "B0", "B1", "C0", "C1", "C2"}
	for i, m := range ms {
		if m.Label != labels[i] {
			t.Errorf("module %d label = %s, want %s", i, m.Label, labels[i])
		}
		if m.ChipMfr != "SK Hynix" {
			t.Errorf("%s: ChipMfr = %s (all working chips are SK Hynix)", m.Label, m.ChipMfr)
		}
		if !m.Design.SupportsHiRA {
			t.Errorf("%s: design does not support HiRA", m.Label)
		}
	}
	for _, m := range NonWorkingModules() {
		if m.Design.SupportsHiRA {
			t.Errorf("%s: non-working module supports HiRA", m.Label)
		}
	}
}

func TestTestedRowsRegions(t *testing.T) {
	g := CharzGeometry()
	rows := TestedRows(g, 2048, 1)
	if len(rows) != 3*2048 {
		t.Fatalf("got %d rows, want %d", len(rows), 3*2048)
	}
	if rows[0] != 0 {
		t.Errorf("first region must start at row 0")
	}
	if last := rows[len(rows)-1]; last != g.RowsPerBank()-1 {
		t.Errorf("last tested row = %d, want %d", last, g.RowsPerBank()-1)
	}
	for _, r := range rows {
		if r < 0 || r >= g.RowsPerBank() {
			t.Fatalf("row %d out of range", r)
		}
	}
	// Strided sampling keeps bounds.
	strided := TestedRows(g, 2048, 7)
	if len(strided) >= len(rows) {
		t.Error("stride did not thin the sample")
	}
}

func TestInteriorRowsExcludesSubarrayEdges(t *testing.T) {
	g := CharzGeometry()
	in := InteriorRows(g, []int{0, 1, 62, 63, 64, 65, 100})
	want := []int{1, 62, 65, 100}
	if len(in) != len(want) {
		t.Fatalf("InteriorRows = %v, want %v", in, want)
	}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("InteriorRows = %v, want %v", in, want)
		}
	}
}

func TestSampleRows(t *testing.T) {
	rows := make([]int, 100)
	for i := range rows {
		rows[i] = i
	}
	s := SampleRows(rows, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	if s[0] != 0 || s[9] != 90 {
		t.Errorf("sample = %v", s)
	}
	if got := SampleRows(rows, 1000); len(got) != 100 {
		t.Error("oversampling should return input")
	}
}

func TestPairWorksAgreesWithIsolation(t *testing.T) {
	h := fastHost(0.33, 42)
	c := h.Chip()
	g := c.Geometry()
	// Probe a handful of pairs; Algorithm 1's verdict must match the
	// underlying isolation graph at nominal t1=t2=3ns.
	rows := []int{32, 3 * 64, 7 * 64, 40*64 + 10, 90 * 64, 127 * 64}
	for _, a := range rows[:3] {
		for _, b := range rows[3:] {
			want := c.Isolated(a/g.RowsPerSubarray, b/g.RowsPerSubarray)
			if got := PairWorks(h, 0, a, b, t3ns, t3ns); got != want {
				t.Errorf("PairWorks(%d,%d) = %v, isolation says %v", a, b, got, want)
			}
		}
	}
}

func TestMeasureCoverageNearDesignTarget(t *testing.T) {
	h := fastHost(0.33, 42)
	g := h.Chip().Geometry()
	tested := TestedRows(g, 2048, 1)
	rowAs := SampleRows(tested, 12)
	rowBs := SampleRows(tested, 128)
	res := MeasureCoverage(h, 0, rowAs, rowBs, t3ns, t3ns)
	if math.Abs(res.Summary.Mean-0.33) > 0.08 {
		t.Errorf("coverage mean = %.3f, want ~0.33", res.Summary.Mean)
	}
	if res.Summary.Min <= 0 {
		t.Errorf("coverage min = %.3f; no zero-coverage rows expected at t1=t2=3ns", res.Summary.Min)
	}
}

func TestCoverageZeroAtBadT1(t *testing.T) {
	h := fastHost(0.33, 42)
	g := h.Chip().Geometry()
	tested := TestedRows(g, 2048, 1)
	rowAs := SampleRows(tested, 8)
	rowBs := SampleRows(tested, 64)
	// t1 = 1.5ns (SoftMC's minimum command period) is below many rows'
	// sense-amp enable time: some rows must drop to zero coverage and the
	// average must fall well below the 3ns-grid value (Fig. 4's first
	// column).
	res := MeasureCoverage(h, 0, rowAs, rowBs, dram.FromNanoseconds(1.5), t3ns)
	if res.Summary.Min != 0 {
		t.Errorf("coverage at t1=1.5ns = %v, want some zero-coverage rows", res.Summary)
	}
	if res.Summary.Mean > 0.25 {
		t.Errorf("coverage mean at t1=1.5ns = %.3f, want < 0.25", res.Summary.Mean)
	}
	// t1 = 6ns exceeds most rows' bank-I/O connect time: coverage drops.
	res6 := MeasureCoverage(h, 0, rowAs, rowBs, dram.FromNanoseconds(6), t3ns)
	if res6.Summary.Mean > 0.25 {
		t.Errorf("coverage mean at t1=6ns = %.3f, want < 0.25", res6.Summary.Mean)
	}
}

func TestFig4GridShape(t *testing.T) {
	if len(Fig4T1Values()) != 4 || len(Fig4T2Values()) != 4 {
		t.Fatal("Fig. 4 grid must be 4x4")
	}
	if Fig4T1Values()[1] != t3ns {
		t.Error("second t1 value must be 3ns")
	}
}

func TestFindDummyRow(t *testing.T) {
	h := fastHost(0.33, 42)
	victim := 10
	dummy, ok := FindDummyRow(h, 0, victim, t3ns, t3ns)
	if !ok {
		t.Fatal("no dummy row found at 33% coverage")
	}
	g := h.Chip().Geometry()
	if !h.Chip().Isolated(victim/g.RowsPerSubarray, dummy/g.RowsPerSubarray) {
		t.Error("dummy row's subarray is not isolated from victim's")
	}
}

func TestMeasureNRHWithoutHiRAMatchesIntrinsic(t *testing.T) {
	h := fastHost(0.33, 42)
	victim := 10
	dummy, ok := FindDummyRow(h, 0, victim, t3ns, t3ns)
	if !ok {
		t.Fatal("no dummy row")
	}
	nrh := h.Chip().Intrinsics(0, victim).NRH
	got := MeasureNRH(h, 0, victim, dummy, false, t3ns, t3ns)
	if math.Abs(float64(got)-nrh) > 0.1*nrh {
		t.Errorf("measured NRH = %d, intrinsic = %.0f", got, nrh)
	}
}

func TestMeasureNRHWithHiRADoubles(t *testing.T) {
	h := fastHost(0.33, 42)
	victims := SampleRows(InteriorRows(CharzGeometry(), TestedRows(CharzGeometry(), 2048, 1)), 6)
	results := MeasureNRHRows(h, 0, victims, t3ns, t3ns)
	if len(results) == 0 {
		t.Fatal("no victims measured")
	}
	study := StudyNRH(results)
	// §4.3: thresholds increase ~1.9x on average; all results should rise
	// well above 1x and stay at or below ~2.6x.
	if study.Normalized.Mean < 1.6 || study.Normalized.Mean > 2.2 {
		t.Errorf("normalized NRH mean = %.3f, want ~1.9", study.Normalized.Mean)
	}
	if study.Normalized.Min < 1.0 {
		t.Errorf("normalized NRH min = %.3f < 1", study.Normalized.Min)
	}
	if study.Normalized.Max > 2.7 {
		t.Errorf("normalized NRH max = %.3f, implausibly high", study.Normalized.Max)
	}
}

func TestNonWorkingModuleFailsVerification(t *testing.T) {
	m := NonWorkingModules()[0]
	h := softmc.NewHost(m.NewChip(CharzGeometry()))
	// On chips that ignore HiRA's sequence, Algorithm 1 sees no bit flips
	// (so the pair "works" vacuously)...
	if !PairWorks(h, 0, 10, 600, t3ns, t3ns) {
		t.Error("Algorithm 1 should observe no flips on a chip that drops the sequence")
	}
	// ...but Algorithm 2 shows no threshold increase: the second
	// activation was ignored, so the victim is never refreshed.
	victim := 10
	without := MeasureNRH(h, 0, victim, 600, false, t3ns, t3ns)
	with := MeasureNRH(h, 0, victim, 600, true, t3ns, t3ns)
	ratio := float64(with) / float64(without)
	if ratio > 1.1 {
		t.Errorf("normalized NRH = %.3f on non-HiRA chip, want ~1.0", ratio)
	}
}

func TestCharacterizeModuleSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("module characterization is a second-scale test")
	}
	m := TestedModules()[4] // C0
	res := CharacterizeModule(m, Options{
		RegionSize: 512, RowAStride: 128, RowBStride: 16, NRHVictims: 6,
	})
	if !res.HiRAWorks {
		t.Error("HiRA verification failed on a working module")
	}
	if math.Abs(res.Coverage.Mean-0.353) > 0.09 {
		t.Errorf("C0 coverage mean = %.3f, want ~0.353", res.Coverage.Mean)
	}
	if math.Abs(res.NormNRH.Mean-1.9) > 0.25 {
		t.Errorf("C0 normalized NRH mean = %.3f, want ~1.9", res.NormNRH.Mean)
	}
}

func TestCoverageIdenticalAcrossBanks(t *testing.T) {
	m := TestedModules()[0]
	if !CoverageIdenticalAcrossBanks(m, 12, t3ns, t3ns) {
		t.Error("§4.4.1: pairs must be identical across banks")
	}
}

func TestBankVariationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bank variation is a second-scale test")
	}
	m := TestedModules()[0]
	banks := BankVariation(m, 4, t3ns, t3ns)
	if len(banks) != CharzGeometry().Banks {
		t.Fatalf("got %d banks", len(banks))
	}
	for _, b := range banks {
		if b.Normalized.N == 0 {
			continue
		}
		// Fig. 6: every bank's values stay above ~1.5x.
		if b.Normalized.Mean < 1.5 || b.Normalized.Mean > 2.3 {
			t.Errorf("bank %d normalized NRH mean = %.3f", b.Bank, b.Normalized.Mean)
		}
	}
}
