package charz

import (
	"hira/internal/dram"
	"hira/internal/metrics"
	"hira/internal/softmc"
)

// FindDummyRow reverse-engineers, with HiRA coverage probes (as §5.1.4
// suggests a memory controller would), a row that HiRA can concurrently
// activate with the victim: it walks candidate subarrays and returns the
// first row that passes the four-pattern pair test. The boolean reports
// success.
func FindDummyRow(h *softmc.Host, bank, victim int, t1, t2 dram.Time) (int, bool) {
	g := h.Chip().Geometry()
	vsa := victim / g.RowsPerSubarray
	for off := 2; off < g.SubarraysPerBank; off++ {
		sa := (vsa + off) % g.SubarraysPerBank
		candidate := sa*g.RowsPerSubarray + g.RowsPerSubarray/2
		if PairWorks(h, bank, victim, candidate, t1, t2) {
			return candidate, true
		}
	}
	return 0, false
}

// hammerTrial runs one Algorithm 2 trial at a given total hammer count:
// initialize the four rows, hammer half, refresh the victim through
// HiRA's second activation (or wait the equivalent time), hammer the
// other half, and report whether the victim flipped.
func hammerTrial(h *softmc.Host, bank, victim, dummy, total int, withHiRA bool, t1, t2 dram.Time) bool {
	const p = softmc.Checkerboard
	// Step 1: initialize the victim with the data pattern and the dummy
	// and aggressor rows with the inverse pattern.
	h.InitRow(bank, victim, p)
	h.InitRow(bank, dummy, p.Inverse())
	h.InitRow(bank, victim-1, p.Inverse())
	h.InitRow(bank, victim+1, p.Inverse())

	// Each HammerPair iteration activates both aggressors once, so the
	// victim receives two disturbances per iteration.
	half := total / 4

	// Step 2: first half of the hammering.
	h.HammerPair(bank, victim-1, victim+1, half)

	// Step 3: refresh the victim via HiRA, or wait the same duration.
	if withHiRA {
		h.HiRA(bank, dummy, victim, t1, t2)
	} else {
		h.Wait(t1 + t2 + h.TRAS + h.TRP)
	}

	// Step 4: second half of the hammering.
	h.HammerPair(bank, victim-1, victim+1, half)

	// Step 5: check the victim for bit flips.
	return h.CompareRow(bank, victim, p) != 0
}

// MeasureNRH binary-searches the minimum total aggressor-activation count
// that flips the victim (the RowHammer threshold, §2.4), with or without a
// mid-hammer HiRA refresh of the victim. The search granularity is 4
// activations (one double-sided iteration per half).
func MeasureNRH(h *softmc.Host, bank, victim, dummy int, withHiRA bool, t1, t2 dram.Time) int {
	lo, hi := 1, 1<<16 // in units of 4 activations: up to 262144 total
	for lo < hi {
		mid := (lo + hi) / 2
		if hammerTrial(h, bank, victim, dummy, mid*4, withHiRA, t1, t2) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo * 4
}

// NRHResult holds one victim row's Algorithm 2 outcome.
type NRHResult struct {
	Victim     int
	Without    int     // threshold without HiRA
	With       int     // threshold with the HiRA mid-hammer refresh
	Normalized float64 // With / Without
}

// MeasureNRHRows runs Algorithm 2 over the victims, discovering a dummy
// row for each. Victims for which no dummy row exists are skipped (their
// HiRA coverage is zero).
func MeasureNRHRows(h *softmc.Host, bank int, victims []int, t1, t2 dram.Time) []NRHResult {
	var out []NRHResult
	for _, v := range victims {
		dummy, ok := FindDummyRow(h, bank, v, t1, t2)
		if !ok {
			continue
		}
		without := MeasureNRH(h, bank, v, dummy, false, t1, t2)
		with := MeasureNRH(h, bank, v, dummy, true, t1, t2)
		out = append(out, NRHResult{
			Victim:     v,
			Without:    without,
			With:       with,
			Normalized: float64(with) / float64(without),
		})
	}
	return out
}

// NRHStudy summarizes Fig. 5: the absolute thresholds with and without
// HiRA and the normalized ratio distribution.
type NRHStudy struct {
	Results          []NRHResult
	Without, With    metrics.Summary
	Normalized       metrics.Summary
	FractionAbove1_7 float64 // the paper's "more than 1.7x for 88.1% of rows"
}

// StudyNRH computes Fig. 5's statistics from Algorithm 2 results.
func StudyNRH(results []NRHResult) NRHStudy {
	var without, with, norm []float64
	above := 0
	for _, r := range results {
		without = append(without, float64(r.Without))
		with = append(with, float64(r.With))
		norm = append(norm, r.Normalized)
		if r.Normalized > 1.7 {
			above++
		}
	}
	s := NRHStudy{
		Results:    results,
		Without:    metrics.Summarize(without),
		With:       metrics.Summarize(with),
		Normalized: metrics.Summarize(norm),
	}
	if len(results) > 0 {
		s.FractionAbove1_7 = float64(above) / float64(len(results))
	}
	return s
}
