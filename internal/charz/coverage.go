package charz

import (
	"hira/internal/dram"
	"hira/internal/metrics"
	"hira/internal/softmc"
)

// PairWorks runs the inner body of Algorithm 1 for one (RowA, RowB) pair:
// for each of the four data patterns, initialize the rows with inverse
// patterns, perform HiRA, close both rows, and check both rows for bit
// flips. It reports whether the pair survived every pattern.
func PairWorks(h *softmc.Host, bank, rowA, rowB int, t1, t2 dram.Time) bool {
	for _, p := range softmc.Patterns() {
		h.InitRow(bank, rowA, p)
		h.InitRow(bank, rowB, p.Inverse())

		h.HiRA(bank, rowA, rowB, t1, t2)

		if h.CompareRow(bank, rowA, p) != 0 {
			return false
		}
		if h.CompareRow(bank, rowB, p.Inverse()) != 0 {
			return false
		}
	}
	return true
}

// CoverageForRow implements Algorithm 1's outer loop body for one RowA:
// the fraction of candidate RowBs that HiRA can reliably activate
// concurrently with RowA.
func CoverageForRow(h *softmc.Host, bank, rowA int, rowBs []int, t1, t2 dram.Time) float64 {
	count := 0
	for _, rowB := range rowBs {
		if rowB == rowA {
			continue
		}
		if PairWorks(h, bank, rowA, rowB, t1, t2) {
			count++
		}
	}
	return float64(count) / float64(len(rowBs))
}

// CoverageResult is the HiRA coverage distribution across tested rows for
// one (t1, t2) timing combination.
type CoverageResult struct {
	T1, T2  dram.Time
	PerRow  []float64
	Summary metrics.Summary
}

// MeasureCoverage runs Algorithm 1 over the given RowA sample against the
// RowB candidates.
func MeasureCoverage(h *softmc.Host, bank int, rowAs, rowBs []int, t1, t2 dram.Time) CoverageResult {
	res := CoverageResult{T1: t1, T2: t2, PerRow: make([]float64, 0, len(rowAs))}
	for _, rowA := range rowAs {
		res.PerRow = append(res.PerRow, CoverageForRow(h, bank, rowA, rowBs, t1, t2))
	}
	res.Summary = metrics.Summarize(res.PerRow)
	return res
}

// Fig4T1Values and Fig4T2Values are the timing grid of Fig. 4.
func Fig4T1Values() []dram.Time {
	return []dram.Time{
		dram.FromNanoseconds(1.5), dram.FromNanoseconds(3),
		dram.FromNanoseconds(4.5), dram.FromNanoseconds(6),
	}
}

// Fig4T2Values returns the t2 grid of Fig. 4 (same values as t1).
func Fig4T2Values() []dram.Time { return Fig4T1Values() }

// CoverageSweep regenerates Fig. 4: the coverage distribution across
// tested rows for every (t1, t2) combination.
func CoverageSweep(h *softmc.Host, bank int, rowAs, rowBs []int) []CoverageResult {
	var out []CoverageResult
	for _, t1 := range Fig4T1Values() {
		for _, t2 := range Fig4T2Values() {
			out = append(out, MeasureCoverage(h, bank, rowAs, rowBs, t1, t2))
		}
	}
	return out
}
