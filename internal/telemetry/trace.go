package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace records one job's span timeline: every phase a cell passes
// through (queued, singleflight-wait, checkpoint lookup/resume,
// simulate, store write) becomes a span with wall-time attribution and
// optional attributes (resumed ticks, cache outcomes). The recorder is
// bounded: past MaxSpans, new spans are counted as dropped rather than
// growing without limit, so a long sweep cannot balloon the server.
//
// Traces flow through contexts (WithTrace / StartSpan), so the layers
// being traced need no job plumbing — the engine worker that happens to
// compute a cell records into whichever job's trace rides its context.
type Trace struct {
	mu      sync.Mutex
	scope   string // e.g. the job ID
	start   time.Time
	spans   []Span
	max     int
	dropped uint64
}

// DefaultMaxSpans bounds a trace's recorded spans: a few spans per cell
// across the largest admitted sweeps, without letting a pathological
// job hold tens of millions of spans in memory.
const DefaultMaxSpans = 1 << 17

// Span is one recorded interval, offsets relative to the trace start.
type Span struct {
	// Name is the phase: "queued", "run", "singleflight-wait",
	// "sem-wait", "store-read", "cell", "checkpoint-lookup",
	// "simulate", "checkpoint-save", "store-write".
	Name string `json:"name"`
	// Scope identifies what the span covers (a cell key, a trajectory
	// key), empty for job-level spans.
	Scope string `json:"scope,omitempty"`
	// StartNS and DurNS place the span on the timeline, in nanoseconds
	// since the trace start.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Attrs carries span details (resumed tick, tick ranges, outcomes).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// NewTrace returns a trace scoped to the given identifier (a job ID).
// maxSpans <= 0 applies DefaultMaxSpans.
func NewTrace(scope string, maxSpans int) *Trace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Trace{scope: scope, start: time.Now(), max: maxSpans}
}

// traceKey carries a *Trace through contexts.
type traceKey struct{}

// WithTrace returns ctx carrying t, the trace StartSpan records into.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// add records a finished span.
func (t *Trace) add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// AddSpan records a retroactive span from explicit wall-clock bounds
// (e.g. a job's queued interval, known only once it starts running).
func (t *Trace) AddSpan(name, scope string, start, end time.Time, attrs map[string]any) {
	if t == nil {
		return
	}
	t.add(Span{
		Name: name, Scope: scope,
		StartNS: start.Sub(t.start).Nanoseconds(),
		DurNS:   end.Sub(start).Nanoseconds(),
		Attrs:   attrs,
	})
}

// ActiveSpan is an in-progress span; End records it. A nil ActiveSpan
// (from a context with no trace) is a no-op, so instrumented code never
// branches on whether tracing is enabled.
type ActiveSpan struct {
	t     *Trace
	name  string
	scope string
	start time.Time
	attrs map[string]any
}

// StartSpan opens a span on ctx's trace (nil if ctx carries none).
func StartSpan(ctx context.Context, name, scope string) *ActiveSpan {
	t := FromContext(ctx)
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, scope: scope, start: time.Now()}
}

// SetAttr attaches a key/value detail to the span.
func (s *ActiveSpan) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End records the span with its duration.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.add(Span{
		Name: s.name, Scope: s.scope,
		StartNS: s.start.Sub(s.t.start).Nanoseconds(),
		DurNS:   time.Since(s.start).Nanoseconds(),
		Attrs:   s.attrs,
	})
}

// View is a trace's serializable snapshot: spans sorted by start time.
type View struct {
	Scope string    `json:"scope"`
	Start time.Time `json:"start"`
	Spans []Span    `json:"spans"`
	// DroppedSpans counts spans lost to the MaxSpans bound; non-zero
	// means the timeline is a prefix, not the whole story.
	DroppedSpans uint64 `json:"dropped_spans,omitempty"`
}

// Snapshot returns the current view (safe while spans still record).
func (t *Trace) Snapshot() View {
	if t == nil {
		return View{}
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	v := View{Scope: t.scope, Start: t.start, DroppedSpans: t.dropped}
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })
	v.Spans = spans
	return v
}

// WriteJSON writes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
// Load the file at chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome trace-event format. Spans are
// packed onto lanes (tids) by greedy interval partitioning, so
// concurrently executing cells render side by side in about:tracing
// regardless of which pooled goroutine ran them.
func (t *Trace) WriteChrome(w io.Writer) error {
	v := t.Snapshot()
	laneEnds := []int64{} // per lane, the end of its last span
	events := make([]chromeEvent, 0, len(v.Spans))
	for _, s := range v.Spans {
		lane := -1
		for i, end := range laneEnds {
			if end <= s.StartNS {
				lane = i
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = s.StartNS + s.DurNS
		args := s.Attrs
		if s.Scope != "" {
			args = make(map[string]any, len(s.Attrs)+1)
			for k, val := range s.Attrs {
				args[k] = val
			}
			args["scope"] = s.Scope
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "job", Ph: "X",
			TS: float64(s.StartNS) / 1e3, Dur: float64(s.DurNS) / 1e3,
			PID: 1, TID: lane, Args: args,
		})
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}

// SpanCount reports how many spans have been recorded (for tests and
// bounds checks), plus how many were dropped.
func (t *Trace) SpanCount() (recorded int, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans), t.dropped
}
