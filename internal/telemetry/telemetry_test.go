package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Inc()
	g.Add(-2)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
	// Nil instruments (disabled telemetry) must be no-ops, not panics.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	nc.Add(7)
	ng.Set(1)
	ng.Dec()
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil instruments reported values")
	}
	var nilReg *Registry
	if nilReg.Counter("x_total", "") != nil || nilReg.Gauge("x", "") != nil {
		t.Fatal("nil registry returned live instruments")
	}
	if err := nilReg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 55.65; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Buckets are cumulative; 0.1 is inclusive (le semantics).
	for _, line := range []string{
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
		"# TYPE test_seconds histogram",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("rendering missing %q in:\n%s", line, out)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(3)
	a := r.Counter("aa_total", "first family", Label{"outcome", "hit"})
	r.Counter("aa_total", "first family", Label{"outcome", "miss"}).Add(2)
	a.Add(9)
	r.GaugeFunc("mid_gauge", "sampled", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total first family
# TYPE aa_total counter
aa_total{outcome="hit"} 9
aa_total{outcome="miss"} 2
# HELP mid_gauge sampled
# TYPE mid_gauge gauge
mid_gauge 1.5
# HELP zz_total last family
# TYPE zz_total counter
zz_total 3
`
	if b.String() != want {
		t.Fatalf("rendering mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	fams := r.Families()
	if len(fams) != 3 || fams[0] != "aa_total counter" || fams[1] != "mid_gauge gauge" {
		t.Fatalf("families = %v", fams)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic("duplicate", func() { r.Counter("dup_total", "") })
	mustPanic("kind conflict", func() { r.Gauge("dup_total", "") })
	mustPanic("bad name", func() { r.Counter("9bad", "") })
	mustPanic("bad label", func() { r.Counter("ok_total", "", Label{"le", "x"}) })
	mustPanic("bad bounds", func() { r.Histogram("h", "", []float64{1, 1}) })
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.WritePrometheus(&strings.Builder{})
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("j1", 0)
	ctx := WithTrace(context.Background(), tr)
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carried a trace")
	}
	if FromContext(ctx) != tr {
		t.Fatal("context lost the trace")
	}

	sp := StartSpan(ctx, "simulate", "cell-a")
	sp.SetAttr("ticks", 123)
	sp.End()
	tr.AddSpan("queued", "", tr.start, tr.start.Add(5*time.Millisecond), nil)

	// A context without a trace yields nil spans that are no-ops.
	none := StartSpan(context.Background(), "x", "")
	none.SetAttr("k", 1)
	none.End()

	v := tr.Snapshot()
	if v.Scope != "j1" || len(v.Spans) != 2 {
		t.Fatalf("snapshot = %+v", v)
	}
	// Sorted by start: the retroactive queued span starts at 0.
	if v.Spans[0].Name != "queued" || v.Spans[0].StartNS != 0 || v.Spans[0].DurNS != 5e6 {
		t.Fatalf("queued span = %+v", v.Spans[0])
	}
	if v.Spans[1].Name != "simulate" || v.Spans[1].Scope != "cell-a" || v.Spans[1].Attrs["ticks"] != 123 {
		t.Fatalf("simulate span = %+v", v.Spans[1])
	}
}

func TestTraceBound(t *testing.T) {
	tr := NewTrace("j", 3)
	for i := 0; i < 5; i++ {
		tr.AddSpan("s", "", tr.start, tr.start, nil)
	}
	n, dropped := tr.SpanCount()
	if n != 3 || dropped != 2 {
		t.Fatalf("bound not enforced: %d recorded, %d dropped", n, dropped)
	}
	if v := tr.Snapshot(); v.DroppedSpans != 2 {
		t.Fatalf("snapshot dropped = %d", v.DroppedSpans)
	}
}

func TestTraceChromeExport(t *testing.T) {
	tr := NewTrace("j", 0)
	base := tr.start
	// Two overlapping spans need two lanes; a third after both fits lane 0.
	tr.AddSpan("a", "cell-1", base, base.Add(10*time.Millisecond), nil)
	tr.AddSpan("b", "cell-2", base.Add(5*time.Millisecond), base.Add(15*time.Millisecond), nil)
	tr.AddSpan("c", "cell-3", base.Add(20*time.Millisecond), base.Add(25*time.Millisecond),
		map[string]any{"ticks": 7})

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, b.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q phase %q", ev.Name, ev.Ph)
		}
		byName[ev.Name] = ev.TID
	}
	if byName["a"] == byName["b"] {
		t.Fatal("overlapping spans share a lane")
	}
	if byName["c"] != byName["a"] {
		t.Fatalf("non-overlapping span did not reuse lane 0: %v", byName)
	}
	for _, ev := range out.TraceEvents {
		if ev.Name == "c" {
			if ev.Args["ticks"] != 7.0 || ev.Args["scope"] != "cell-3" {
				t.Fatalf("args = %v", ev.Args)
			}
		}
	}
}

func TestTraceJSONExport(t *testing.T) {
	tr := NewTrace("j9", 0)
	tr.AddSpan("simulate", "cell", tr.start, tr.start.Add(time.Millisecond), map[string]any{"from": 0})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.Unmarshal([]byte(b.String()), &v); err != nil {
		t.Fatal(err)
	}
	if v.Scope != "j9" || len(v.Spans) != 1 || v.Spans[0].DurNS != 1e6 {
		t.Fatalf("round-trip = %+v", v)
	}
}
