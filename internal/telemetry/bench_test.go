package telemetry

import (
	"context"
	"testing"
)

// The telemetry-overhead benches pin the cost of the instruments the
// engine's per-cell paths pay, published alongside the simulation
// benches in BENCH_pr6.json: counters and gauges must stay at a single
// uncontended atomic op, histograms at a bucket scan plus two atomics,
// and span start/end at roughly two clock reads plus one bounded
// append. None of these sit on the per-tick hot loop — the scheduler
// is sampled per cell — but cells resolve at sweep scale, so the
// per-event cost still deserves a pinned number.

func BenchmarkTelemetryCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTelemetryHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkTelemetryNilInstruments(b *testing.B) {
	// The disabled-telemetry path: one nil check per call site.
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}

func BenchmarkTelemetrySpan(b *testing.B) {
	tr := NewTrace("bench", b.N+1)
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(ctx, "simulate", "cell").End()
	}
}

func BenchmarkTelemetrySpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(ctx, "simulate", "cell").End()
	}
}
