// Package telemetry is the repo's dependency-free observability layer:
// a metrics registry (counters, gauges, histograms — all with atomic
// hot paths) rendered in the Prometheus text exposition format, and a
// per-job trace recorder (trace.go) that captures span timelines
// exportable as JSON or Chrome trace-event files.
//
// The package deliberately has no third-party dependencies and no
// global state: every Server owns its own Registry, and instruments are
// plain structs whose methods are safe on nil receivers, so layers can
// hold instrument fields unconditionally and pay a single predictable
// branch when telemetry is disabled. Instrument update paths never take
// the registry lock — counters are one atomic add — so instrumented hot
// paths (per-cell, never per-tick) stay contention-free.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair, fixed at registration: the registry
// renders labeled series as separate instruments of one family, which
// keeps the update path a single atomic op (no per-observation label
// hashing).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing metric. The zero value is
// usable; methods on a nil Counter are no-ops, so uninstrumented code
// paths need no conditional wiring.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits.
// Methods on a nil Gauge are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a cumulative-bucket distribution with fixed upper
// bounds (an implicit +Inf bucket is appended). Observe is a linear
// bucket scan plus two atomic ops — histograms here have ~a dozen
// buckets, where a scan beats binary search. Methods on nil are no-ops.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefSecondsBuckets is the default histogram bucketing for durations in
// seconds: microseconds through tens of seconds, the range a cell
// simulation or a job occupies.
func DefSecondsBuckets() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// metricKind is the Prometheus family type.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one registered instrument (one label set of one family).
type series struct {
	name   string // family name
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // func-backed counter/gauge; overrides c/g
}

// family groups the series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds instruments and renders them in the Prometheus text
// exposition format. Construct with NewRegistry; methods on a nil
// Registry return nil instruments (whose methods are no-ops), so a
// layer can be wired unconditionally and instrumented only when its
// caller supplies a registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	start    time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), start: time.Now()}
}

// register adds a series, panicking on programmer errors (invalid
// names, duplicate label sets, kind conflicts) exactly like expvar —
// metric registration happens once at construction, never on request
// paths.
func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	key := renderLabels(s.labels)
	for _, old := range f.series {
		if renderLabels(old.labels) == key {
			panic(fmt.Sprintf("telemetry: duplicate registration of %s%s", name, key))
		}
	}
	s.name = name
	f.series = append(f.series, s)
}

// Counter registers and returns a counter. A nil registry returns nil
// (a no-op instrument).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, c: c})
	return c
}

// Gauge registers and returns a gauge (nil on a nil registry).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: labels, g: g})
	return g
}

// Histogram registers and returns a histogram over the given ascending
// upper bounds (+Inf is implicit; nil bounds take DefSecondsBuckets).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefSecondsBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, kindHistogram, &series{labels: labels, h: h})
	return h
}

// CounterFunc registers a counter whose value is read at scrape time.
// Use it to expose an existing monotone tally (engine stats, snapshot
// store stats) without double-counting or touching its hot path.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, &series{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, &series{labels: labels, fn: fn})
}

// RegisterProcessMetrics adds coarse process-health gauges (goroutines,
// heap bytes, uptime) so a scrape of a hira-server is self-contained.
func (r *Registry) RegisterProcessMetrics() {
	if r == nil {
		return
	}
	r.GaugeFunc("hira_process_goroutines", "Live goroutines in the server process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("hira_process_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("hira_process_uptime_seconds", "Seconds since the telemetry registry was created.",
		func() float64 { return time.Since(r.start).Seconds() })
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, series in registration order. Func-backed
// values are sampled during the call.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			renderSeries(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Families returns the registered family names and kinds, sorted by
// name ("name kind" lines) — the shape tests pin /metrics against.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name+" "+string(f.kind))
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

func renderSeries(b *strings.Builder, s *series) {
	switch {
	case s.h != nil:
		cum := uint64(0)
		for i := range s.h.buckets {
			cum += s.h.buckets[i].Load()
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			labels := append(append([]Label{}, s.labels...), Label{"le", le})
			fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, renderLabels(labels), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", s.name, renderLabels(s.labels), formatFloat(s.h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", s.name, renderLabels(s.labels), s.h.Count())
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", s.name, renderLabels(s.labels), formatFloat(s.fn()))
	case s.c != nil:
		fmt.Fprintf(b, "%s%s %d\n", s.name, renderLabels(s.labels), s.c.Value())
	case s.g != nil:
		fmt.Fprintf(b, "%s%s %s\n", s.name, renderLabels(s.labels), formatFloat(s.g.Value()))
	}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || name == "le" {
		return false // le is reserved for histogram buckets
	}
	return validMetricName(name) && !strings.Contains(name, ":")
}
