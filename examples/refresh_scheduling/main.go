// Refresh scheduling: run the cycle-level system simulator with the
// refresh policies of §8/§9 on a couple of multiprogrammed mixes and see
// where HiRA-MC's three actions land — refresh-access parallelization,
// refresh-refresh parallelization, and deadline standalone refreshes.
package main

import (
	"context"
	"fmt"

	"hira"
)

func main() {
	opts := hira.SimOptions{Workloads: 2, Measure: 80000, Warmup: 20000}

	// Periodic refresh at a high chip capacity, where REF hurts most.
	base := hira.DefaultSystemConfig()
	base.ChipCapacityGbit = 64
	policies := []hira.RefreshPolicy{
		hira.NoRefreshPolicy(),
		hira.BaselinePolicy(),
		hira.HiRAPeriodicPolicy(0),
		hira.HiRAPeriodicPolicy(4),
	}
	scores, err := hira.RunPolicies(context.Background(), base, policies, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("periodic refresh, 64Gb chips (weighted speedup and op mix):")
	for _, s := range scores {
		fmt.Printf("  %-10s WS=%.3f  hidden-behind-access=%d paired=%d standalone=%d REF=%d\n",
			s.Policy.Name, s.WS, s.Sched.HiRAPiggybacks, s.Sched.HiRAPairs,
			s.Sched.StandaloneRefreshes, s.Sched.REFs)
	}

	// Preventive refresh under severe RowHammer vulnerability.
	nrh := 64
	scores, err = hira.RunPolicies(context.Background(), hira.DefaultSystemConfig(), []hira.RefreshPolicy{
		hira.BaselinePolicy(),
		hira.PARAPolicy(nrh),
		hira.PARAHiRAPolicy(nrh, 4),
	}, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\npreventive refresh at NRH=%d:\n", nrh)
	para := 0.0
	for _, s := range scores {
		if s.Policy.Name == "PARA" {
			para = s.WS
		}
	}
	for _, s := range scores {
		fmt.Printf("  %-10s WS=%.3f", s.Policy.Name, s.WS)
		if s.Policy.Name != "Baseline" && para > 0 {
			fmt.Printf("  (%.2fx of PARA)", s.WS/para)
		}
		fmt.Println()
	}
	fmt.Println("\npaper's headline: HiRA-4 improves PARA-protected performance 3.73x at NRH=64")
}
