// PARA tuning: the paper's §9.1 security workflow. Given a chip's
// RowHammer threshold, derive the PARA probability threshold that meets
// the 1e-15 reliability target under the revisited analysis — including
// the extra aggressiveness HiRA's tRefSlack requires — and compare with
// the original PARA configuration, which misses the target.
package main

import (
	"fmt"

	"hira"
)

func main() {
	fmt.Println("PARA probability thresholds for the 1e-15 target (Fig. 11):")
	fmt.Printf("%-8s %-12s %-10s %-10s\n", "NRH", "tRefSlack", "pth", "vs legacy")
	for _, nrh := range []int{1024, 512, 256, 128, 64} {
		for _, slack := range []int{0, 4, 8} {
			pth, err := hira.SolvePARAThreshold(nrh, slack)
			if err != nil {
				panic(err)
			}
			legacy, _ := hira.SolvePARAThreshold(nrh, 0)
			fmt.Printf("%-8d %2d x tRC    %-10.4f %+.4f\n", nrh, slack, pth, pth-legacy)
		}
	}

	// The cost of legacy under-configuration: evaluate PARA-Legacy's pth
	// under the revisited model.
	pts, err := hira.Fig11()
	if err != nil {
		panic(err)
	}
	fmt.Println("\nPARA-Legacy's actual success probability (should be 1e-15):")
	for _, p := range pts {
		if p.SlackTRC != 0 {
			continue
		}
		fmt.Printf("  NRH=%-5d legacy pth %.4f -> pRH %.3e (k = %.4f)\n",
			p.NRH, p.LegacyPth, p.LegacyPRH, p.K)
	}
	fmt.Println("\nconclusion: as NRH shrinks, the legacy configuration misses the")
	fmt.Println("target by a growing factor; Expression 8's pth restores it.")
}
