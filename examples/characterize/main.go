// Characterize: run the paper's §4 methodology end to end on one module —
// Algorithm 1 (HiRA coverage at the Fig. 4 timing grid), Algorithm 2
// (verifying the second activation through RowHammer thresholds), and the
// cross-bank consistency check of §4.4.
package main

import (
	"fmt"

	"hira"
)

func main() {
	m := hira.Modules()[5] // C1, the highest-coverage module in Table 4
	fmt.Printf("characterizing %v\n\n", m)

	// Algorithm 1 across the Fig. 4 (t1, t2) grid, on a thinned sample.
	fmt.Println("HiRA coverage across tested rows (Fig. 4):")
	for _, r := range hira.CoverageSweep(m, 24, 256) {
		fmt.Printf("  t1=%-6v t2=%-6v min=%5.1f%% median=%5.1f%% max=%5.1f%%\n",
			r.T1, r.T2, 100*r.Summary.Min, 100*r.Summary.Median, 100*r.Summary.Max)
	}

	// Algorithm 2: does the second activation actually refresh the row?
	fmt.Println("\nRowHammer threshold study (Fig. 5):")
	s := hira.VerifySecondActivation(m, 16)
	fmt.Printf("  without HiRA: mean %.0f activations\n", s.Without.Mean)
	fmt.Printf("  with HiRA:    mean %.0f activations\n", s.With.Mean)
	fmt.Printf("  normalized:   mean %.2fx (min %.2f, max %.2f), %.0f%% above 1.7x\n",
		s.Normalized.Mean, s.Normalized.Min, s.Normalized.Max, 100*s.FractionAbove1_7)

	// Per-bank variation (Fig. 6).
	fmt.Println("\nnormalized threshold per bank (Fig. 6):")
	for _, b := range hira.BankVariation(m, 4) {
		fmt.Printf("  bank %2d: mean %.2fx\n", b.Bank, b.Normalized.Mean)
	}

	// Negative control: a module from a manufacturer where HiRA fails.
	bad := hira.NonWorkingModules()[0]
	res := hira.CharacterizeModule(bad, hira.CharacterizationOptions{
		RegionSize: 512, NRHVictims: 6,
	})
	fmt.Printf("\nnegative control %v: HiRA verified = %v (expected false)\n", bad, res.HiRAWorks)
}
