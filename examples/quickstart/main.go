// Quickstart: perform a HiRA operation on a virtual off-the-shelf DDR4
// chip and watch both rows survive (or not, when the subarrays share
// sense amplifiers) — the essence of the paper's §3 and §4.
package main

import (
	"fmt"

	"hira"
	"hira/internal/dram"
	"hira/internal/softmc"
)

func main() {
	// Grab module C0 from the paper's Table 1 and attach a SoftMC-style
	// command host to its virtual chip.
	m := hira.Modules()[4]
	fmt.Printf("module %v\n", m)
	chip := hira.NewVirtualChip(m)
	host := hira.NewHost(chip)

	// The headline latency arithmetic: refreshing two rows back-to-back.
	t := hira.DDR4Timing(8)
	fmt.Printf("two-row refresh: %v conventional vs %v with HiRA (-%.1f%%)\n",
		t.ConventionalPairLatency(), t.HiRAPairLatency(), 100*hira.PairLatencySavings())

	// Pick two rows in electrically isolated subarrays and HiRA them.
	g := chip.Geometry()
	rowA := 0
	partners := chip.IsolatedSubarrays(0)
	rowB := partners[0]*g.RowsPerSubarray + 7
	t1 := dram.FromNanoseconds(3)

	host.InitRow(0, rowA, softmc.Checkerboard)
	host.InitRow(0, rowB, softmc.InvCheckered)
	host.HiRA(0, rowA, rowB, t1, t1)
	fmt.Printf("isolated pair (%d,%d): flips A=%d B=%d (expect 0,0)\n",
		rowA, rowB,
		host.CompareRow(0, rowA, softmc.Checkerboard),
		host.CompareRow(0, rowB, softmc.InvCheckered))

	// Now a pair in the same subarray: shared bitlines corrupt both rows.
	badB := 9
	host.InitRow(0, rowA, softmc.Checkerboard)
	host.InitRow(0, badB, softmc.InvCheckered)
	host.HiRA(0, rowA, badB, t1, t1)
	fmt.Printf("same-subarray pair (%d,%d): flips A=%d B=%d (expect > 0)\n",
		rowA, badB,
		host.CompareRow(0, rowA, softmc.Checkerboard),
		host.CompareRow(0, badB, softmc.InvCheckered))

	// HiRA-MC's hardware budget (Table 2).
	area := hira.Area()
	fmt.Printf("HiRA-MC hardware: %.5f mm2, %.2fns worst-case query\n",
		area.TotalAreaMM2, area.QueryLatencyNS)
}
