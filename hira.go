// Package hira is a from-scratch Go reproduction of "HiRA: Hidden Row
// Activation for Reducing Refresh Latency of Off-the-Shelf DRAM Chips"
// (Yağlıkçı et al., MICRO 2022).
//
// HiRA refreshes one DRAM row concurrently with refreshing or accessing
// another row of the same bank by issuing an engineered ACT-PRE-ACT
// command sequence with deliberately violated timings (t1 = t2 = 3 ns),
// exploiting subarrays whose charge-restoration circuitry is electrically
// isolated. The HiRA Memory Controller (HiRA-MC) schedules periodic and
// RowHammer-preventive refreshes through HiRA operations to hide their
// latency behind demand accesses and other refreshes.
//
// This package is the public facade over the full reproduction:
//
//   - Characterization (§4): virtual DDR4 chips with the electrical
//     preconditions HiRA depends on, the paper's Algorithms 1 and 2, and
//     the Table 1/4 module set — see Modules, CharacterizeModule,
//     CoverageSweep, VerifySecondActivation, BankVariation.
//   - Security analysis (§9.1): PARA's revisited probability-threshold
//     derivation — see SolvePARAThreshold, Fig11.
//   - Hardware cost (§6): the Table 2 area/latency model — see AreaReport.
//   - System-level evaluation (§7-§10): a cycle-level DDR4 simulator with
//     HiRA-MC — see the re-exported sim experiment runners Fig9, Fig12,
//     Fig13-Fig16, and RunPolicies. Sweeps decompose into deterministic,
//     content-keyed cells and run on a parallel experiment engine
//     (internal/engine); SimOptions.Parallelism sizes its worker pool,
//     SimOptions.ResultDir persists per-cell results across runs, and
//     SimOptions.SnapInterval checkpoints running simulations so a sweep
//     rerun with longer horizons resumes each cell from its stored
//     machine state (bit-identically) instead of re-simulating it.
//
// Subpackages under internal/ hold the implementation; everything a
// downstream user needs is exported here or through the cmd/ binaries.
package hira

import (
	"hira/internal/areamodel"
	"hira/internal/charz"
	"hira/internal/chip"
	"hira/internal/dram"
	"hira/internal/metrics"
	"hira/internal/rowhammer"
	"hira/internal/sim"
	"hira/internal/softmc"
	"hira/internal/workload"
)

// Timing re-exports the DDR4 timing parameter set.
type Timing = dram.Timing

// DDR4Timing returns the paper's DDR4-2400 timing for a chip capacity in
// Gbit (tRFC follows Expression 1).
func DDR4Timing(capacityGbit int) Timing { return dram.DDR4_2400(capacityGbit) }

// PairLatencySavings returns the headline latency claim: the fractional
// reduction in back-to-back two-row refresh latency that HiRA achieves
// (38 ns vs 78.25 ns = 51.4%).
func PairLatencySavings() float64 { return dram.DDR4_2400(8).HiRAPairSavings() }

// Module is one virtual DRAM module under characterization (Table 1/4).
type Module = charz.Module

// Modules returns the seven working modules of Table 1/Table 4.
func Modules() []Module { return charz.TestedModules() }

// NonWorkingModules returns stand-ins for the manufacturers on which HiRA
// does not work (§12).
func NonWorkingModules() []Module { return charz.NonWorkingModules() }

// CharacterizationOptions sizes a characterization run.
type CharacterizationOptions = charz.Options

// ModuleResult is one row of Table 4.
type ModuleResult = charz.ModuleResult

// CharacterizeModule runs Algorithms 1 and 2 against a module's virtual
// chip and reports its HiRA coverage and normalized RowHammer threshold.
func CharacterizeModule(m Module, opts CharacterizationOptions) ModuleResult {
	return charz.CharacterizeModule(m, opts)
}

// CoverageResult is the coverage distribution at one (t1, t2) point.
type CoverageResult = charz.CoverageResult

// CoverageSweep regenerates Fig. 4 for a module: HiRA coverage across
// tested rows for every (t1, t2) in the paper's grid.
func CoverageSweep(m Module, rowAs, rowBs int) []CoverageResult {
	g := charz.CharzGeometry()
	h := softmc.NewHost(m.NewChip(g))
	tested := charz.TestedRows(g, 2048, 1)
	as := charz.SampleRows(tested, rowAs)
	bs := charz.SampleRows(tested, rowBs)
	return charz.CoverageSweep(h, 0, as, bs)
}

// NRHStudy is Fig. 5's summary: RowHammer thresholds with/without HiRA.
type NRHStudy = charz.NRHStudy

// VerifySecondActivation regenerates Fig. 5 for a module: measure
// RowHammer thresholds with and without a mid-hammer HiRA refresh on
// `victims` sampled rows.
func VerifySecondActivation(m Module, victims int) NRHStudy {
	g := charz.CharzGeometry()
	h := softmc.NewHost(m.NewChip(g))
	t := dram.FromNanoseconds(3)
	rows := charz.SampleRows(charz.InteriorRows(g, charz.TestedRows(g, 2048, 1)), victims)
	return charz.StudyNRH(charz.MeasureNRHRows(h, 0, rows, t, t))
}

// BankResult is one bank's normalized-threshold distribution (Fig. 6).
type BankResult = charz.BankResult

// BankVariation regenerates Fig. 6 for a module.
func BankVariation(m Module, victimsPerBank int) []BankResult {
	t := dram.FromNanoseconds(3)
	return charz.BankVariation(m, victimsPerBank, t, t)
}

// Summary re-exports the box-and-whiskers summary statistics.
type Summary = metrics.Summary

// SolvePARAThreshold solves PARA's probability threshold pth for a
// RowHammer threshold and a tRefSlack in units of tRC, targeting the
// 1e-15 consumer reliability level (§9.1, Expression 8).
func SolvePARAThreshold(nrh, slackTRC int) (float64, error) {
	return rowhammer.DefaultConfig().SolvePth(nrh, float64(slackTRC), rowhammer.ReliabilityTarget)
}

// Fig11Point is one point of the Fig. 11 security analysis.
type Fig11Point = rowhammer.Fig11Point

// Fig11 computes the full Fig. 11 grid: pth and the success probability
// of PARA-Legacy's configuration under the revisited model.
func Fig11() ([]Fig11Point, error) { return rowhammer.DefaultConfig().Fig11() }

// AreaReport is Table 2: HiRA-MC's per-rank area and access latency.
type AreaReport = areamodel.Report

// Area computes Table 2.
func Area() AreaReport { return areamodel.BuildReport() }

// System-level experiment re-exports (§7-§10).
type (
	// SimOptions sizes a performance sweep (workload count, measured
	// ticks, etc.) and configures the experiment engine behind it
	// (Parallelism, ResultDir, Progress, Stats).
	SimOptions = sim.Options
	// EngineStats tallies how the experiment engine resolved a sweep's
	// cells: simulated vs served from the in-memory cache or the
	// ResultDir store. Point SimOptions.Stats at one to collect it.
	EngineStats = sim.EngineStats
	// SimCellResult is the persisted payload of one engine cell.
	SimCellResult = sim.CellResult
	// SimEngine is a shared experiment engine: sweeps run through one
	// SimEngine share the cell cache, the result store, the compute
	// bound, and in-flight computations across concurrent callers.
	SimEngine = sim.Engine
	// SimEngineConfig sizes a shared SimEngine.
	SimEngineConfig = sim.EngineConfig
	// FigureResult is the serializable envelope of one figure run — the
	// encoding shared by `hira-sim -json` and the experiment service.
	FigureResult = sim.FigureResult
	// SystemConfig describes one simulated machine.
	SystemConfig = sim.Config
	// RefreshPolicy names one refresh configuration under test.
	RefreshPolicy = sim.RefreshPolicy
	// PolicyScore is a policy's average weighted speedup.
	PolicyScore = sim.PolicyScore
	// Fig9Row is one capacity point of Fig. 9.
	Fig9Row = sim.Fig9Row
	// Fig12Row is one RowHammer-threshold point of Fig. 12.
	Fig12Row = sim.Fig12Row
	// ScaleRow is one point of the §10 channel/rank sweeps.
	ScaleRow = sim.ScaleRow
	// AttackRow is one (attack, NRH) point of the attack×mitigation
	// sweep: weighted speedups plus per-policy efficacy forensics.
	AttackRow = sim.AttackRow
	// AttackSpec parameterizes a mapping-aware hammering workload.
	AttackSpec = workload.AttackSpec
	// Attack is the attacker workload source an AttackSpec builds.
	Attack = workload.Attack
	// ForensicsSummary is the per-policy RowHammer forensics report a
	// sweep row carries when SimOptions.Forensics is set: the activation
	// ledger's tallies, threshold-crossing counts, and (with
	// ForensicsRecorder) the flight recorder's command log.
	ForensicsSummary = sim.ForensicsSummary
)

// Policy constructors.
var (
	// NoRefreshPolicy is the ideal no-refresh upper bound.
	NoRefreshPolicy = sim.NoRefreshPolicy
	// BaselinePolicy is conventional rank-level REF.
	BaselinePolicy = sim.BaselinePolicy
	// HiRAPeriodicPolicy is HiRA-N for periodic refresh.
	HiRAPeriodicPolicy = sim.HiRAPeriodicPolicy
	// PARAPolicy is PARA without HiRA.
	PARAPolicy = sim.PARAPolicy
	// PARAHiRAPolicy is PARA with HiRA-N parallelization.
	PARAHiRAPolicy = sim.PARAHiRAPolicy
	// GraphenePolicy is the Graphene-style counter-table tracker.
	GraphenePolicy = sim.GraphenePolicy
	// RFMPolicy is DDR5 refresh-management-style activation pacing.
	RFMPolicy = sim.RFMPolicy
	// DefaultSystemConfig is Table 3's system.
	DefaultSystemConfig = sim.DefaultConfig
	// NewAttackWorkload builds a mapping-aware hammering Workload.
	NewAttackWorkload = workload.NewAttack
	// AttackKinds lists the attack sweep's builtin attacker presets.
	AttackKinds = sim.AttackKinds
)

// Experiment runners. Each takes a context for cancellation and runs on
// a fresh single-sweep engine; construct a NewSimEngine to share cells
// across calls and callers.
var (
	// NewSimEngine builds a shared experiment engine.
	NewSimEngine = sim.NewEngine
	// Figure dispatches one named figure sweep ("fig9" ... "fig16", or
	// "attack" for the attack×mitigation grid) and wraps the rows in the
	// serializable FigureResult envelope.
	Figure = sim.Figure
	// RunPolicies evaluates refresh policies on shared workload mixes.
	RunPolicies = sim.RunPolicies
	// Fig9 sweeps chip capacity for periodic refresh (§8).
	Fig9 = sim.Fig9
	// Fig12 sweeps the RowHammer threshold for preventive refresh (§9.2).
	Fig12 = sim.Fig12
	// Fig13 sweeps channels under periodic refresh (§10.1).
	Fig13 = sim.Fig13
	// Fig14 sweeps ranks under periodic refresh (§10.1).
	Fig14 = sim.Fig14
	// Fig15 sweeps channels under PARA (§10.2).
	Fig15 = sim.Fig15
	// Fig16 sweeps ranks under PARA (§10.2).
	Fig16 = sim.Fig16
	// AttackSweep runs the attack×mitigation×NRH grid: each attacker
	// preset against the mitigation zoo, with per-point efficacy
	// forensics always attached.
	AttackSweep = sim.AttackSweep
)

// Workload re-exports: sweeps accept any workload source per core —
// builtin SPEC profiles, custom profiles, or recorded traces — via
// SimOptions.Mixes; sources carry a content identity so the experiment
// engine never aliases two different workloads.
type (
	// Workload is one pluggable workload source (content key, label,
	// seeded deterministic access stream).
	Workload = workload.Source
	// WorkloadProfile is a synthetic benchmark characterization; custom
	// profiles must pass Validate.
	WorkloadProfile = workload.Profile
	// WorkloadMix is one multiprogrammed workload: a source per core.
	WorkloadMix = workload.SourceMix
	// WorkloadTrace is a recorded access trace replayed deterministically;
	// its identity is the SHA-256 of its encoded bytes.
	WorkloadTrace = workload.Trace
	// WorkloadAccess is one access of a trace or generator stream.
	WorkloadAccess = workload.Access
)

// Workload constructors and helpers.
var (
	// SPECProfiles returns the builtin SPEC CPU2006 profile set.
	SPECProfiles = workload.SPEC2006Profiles
	// WorkloadByName returns a builtin benchmark profile.
	WorkloadByName = workload.ProfileByName
	// RecordTrace captures the first n accesses of a source's stream as
	// a replayable trace.
	RecordTrace = workload.Record
	// LoadTrace reads a trace file written by WriteTraceFile or
	// `hira-sim -record`.
	LoadTrace = workload.LoadTrace
	// WriteTraceFile encodes accesses into the versioned trace format.
	WriteTraceFile = workload.WriteTraceFile
	// RoundRobinWorkloadMixes deals sources round-robin into n mixes of
	// the given core count (the `hira-sim -trace` assignment rule).
	RoundRobinWorkloadMixes = workload.RoundRobinMixes
)

// NewVirtualChip builds a virtual DDR4 chip directly for custom
// experiments (see internal/chip for the electrical model).
func NewVirtualChip(m Module) *chip.Chip { return m.NewChip(charz.CharzGeometry()) }

// NewHost attaches a SoftMC-style command-level host to a chip.
func NewHost(c *chip.Chip) *softmc.Host { return softmc.NewHost(c) }
